"""Append-only JSONL run ledger with rolling-median trend detection.

Every ``gmt-bench`` / ``gmt-experiments`` / ``gmt-serve`` invocation
appends one line to ``benchmarks/results/ledger.jsonl`` (override with
``$GMT_LEDGER_PATH``; CLIs take ``--no-ledger``): a timestamp, the tool,
a content hash of its configuration, the code-version salt from
:func:`repro.experiments.engine.code_salt`, host wall time, replay
throughput (accesses/sec), the run's key simulated metrics, and any
anomaly count.  The file is the project's performance memory — a
baseline snapshot (``BENCH_baseline.json``) answers "did this PR
regress?", the ledger answers "has this been slowly regressing for ten
runs?".

Trend detection (``gmt-bench --trend``) is deliberately boring
statistics: for each numeric metric, compare the most recent ``sustain``
runs against the **rolling median** of the runs before them.  Drift is
flagged only when *every* recent run deviates beyond the threshold in
the same direction — a single noisy run (thermal throttle, busy CI box)
can never trip it, and a genuine regression trips it on the second
consecutive bad run.  Entries are compared only against runs with the
same config hash, so changing ``--scale`` starts a fresh trajectory
instead of fake drift.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass

from repro.errors import ConfigError

LEDGER_VERSION = 1

#: Default on-repo location; every tool shares one file (the ``tool``
#: field keeps trajectories separate).
DEFAULT_LEDGER_PATH = os.path.join("benchmarks", "results", "ledger.jsonl")

#: Environment override — tests point this at a tmp dir so suite runs
#: never pollute the committed ledger.
LEDGER_ENV_VAR = "GMT_LEDGER_PATH"


def ledger_path(path: str | None = None) -> str:
    """Resolve the ledger location: explicit > ``$GMT_LEDGER_PATH`` > default."""
    if path is not None:
        return path
    return os.environ.get(LEDGER_ENV_VAR) or DEFAULT_LEDGER_PATH


def config_hash(params: dict) -> str:
    """Short content hash of a run's configuration dict.

    Trend analysis only compares runs with equal hashes, so anything
    that changes the workload (scale, seed, cell matrix, tenant mix)
    belongs in ``params``.
    """
    encoded = json.dumps(params, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(encoded.encode()).hexdigest()[:16]


def make_entry(
    tool: str,
    *,
    wall_s: float,
    params: dict | None = None,
    accesses_per_sec: float | None = None,
    metrics: dict | None = None,
    anomalies: int = 0,
    salt: str | None = None,
    engine: str = "scalar",
) -> dict:
    """Build one ledger entry (JSON-ready, not yet written).

    ``engine`` records which replay engine produced the run's wall-clock
    numbers (``repro.core.ENGINE_NAMES`` minus ``"auto"``) — trend
    analysis over mixed-engine histories would otherwise flag the
    vector engine's speedup as a drift.
    """
    if not tool:
        raise ConfigError("ledger entries need a tool name")
    if salt is None:
        from repro.experiments.engine import code_salt

        salt = code_salt()
    return {
        "version": LEDGER_VERSION,
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "tool": tool,
        "code_salt": salt,
        "config_hash": config_hash(params or {}),
        "engine": engine,
        "wall_s": float(wall_s),
        "accesses_per_sec": (
            float(accesses_per_sec) if accesses_per_sec is not None else None
        ),
        "metrics": {k: float(v) for k, v in (metrics or {}).items()},
        "anomalies": int(anomalies),
    }


def append_entry(entry: dict, path: str | None = None) -> str:
    """Append one entry to the ledger (creating parents); returns the path."""
    target = ledger_path(path)
    parent = os.path.dirname(target)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(target, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return target


def record_run(
    tool: str,
    *,
    wall_s: float,
    params: dict | None = None,
    accesses_per_sec: float | None = None,
    metrics: dict | None = None,
    anomalies: int = 0,
    path: str | None = None,
    engine: str = "scalar",
) -> dict:
    """Build and append one entry in one call; returns the entry."""
    entry = make_entry(
        tool,
        wall_s=wall_s,
        params=params,
        accesses_per_sec=accesses_per_sec,
        metrics=metrics,
        anomalies=anomalies,
        engine=engine,
    )
    append_entry(entry, path)
    return entry


def read_ledger(
    path: str | None = None,
    tool: str | None = None,
    config: str | None = None,
) -> list[dict]:
    """All ledger entries, oldest first (empty when the file is absent).

    Malformed lines are skipped — an interrupted append must never make
    the whole history unreadable.  ``tool``/``config`` filter by the
    entry's tool name and config hash.
    """
    target = ledger_path(path)
    entries: list[dict] = []
    try:
        with open(target, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(entry, dict) or "tool" not in entry:
                    continue
                if tool is not None and entry.get("tool") != tool:
                    continue
                if config is not None and entry.get("config_hash") != config:
                    continue
                entries.append(entry)
    except FileNotFoundError:
        return []
    return entries


# ----------------------------------------------------------------------
# trend detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Drift:
    """One metric's sustained departure from its rolling median.

    Attributes:
        metric: the entry key (``wall_s``, ``accesses_per_sec``, or a
            ``metrics.*`` name).
        median: rolling median of the baseline runs.
        latest: the most recent run's value.
        rel_delta: ``(latest - median) / median`` (signed).
        sustain: how many consecutive recent runs deviated.
    """

    metric: str
    median: float
    latest: float
    rel_delta: float
    sustain: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        direction = "up" if self.rel_delta > 0 else "down"
        return (
            f"{self.metric}: {direction} {abs(self.rel_delta):.1%} vs rolling "
            f"median {self.median:g} (last {self.sustain} runs, latest {self.latest:g})"
        )


def _metric_series(entries: list[dict], metric: str) -> list[float]:
    values: list[float] = []
    for entry in entries:
        if metric in ("wall_s", "accesses_per_sec", "anomalies"):
            value = entry.get(metric)
        else:
            value = entry.get("metrics", {}).get(metric)
        if value is None:
            continue
        values.append(float(value))
    return values


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_drift(
    values: list[float],
    window: int = 8,
    threshold: float = 0.25,
    sustain: int = 2,
) -> tuple[float, float] | None:
    """Sustained drift in a value series (None = steady).

    The last ``sustain`` values are each compared against the median of
    the up-to-``window`` values preceding them.  Drift requires *all* of
    them beyond ``threshold`` relative deviation in the *same*
    direction.  Returns ``(median, latest)`` when drifting.  Needs at
    least ``sustain + 1`` values — with fewer there is no baseline yet.
    """
    if window < 1:
        raise ConfigError(f"window must be >= 1, got {window}")
    if threshold <= 0:
        raise ConfigError(f"threshold must be positive, got {threshold}")
    if sustain < 1:
        raise ConfigError(f"sustain must be >= 1, got {sustain}")
    if len(values) < sustain + 1:
        return None
    baseline = values[:-sustain][-window:]
    if not baseline:
        return None
    median = _median(baseline)
    recent = values[-sustain:]
    scale = max(abs(median), 1e-12)
    deltas = [(v - median) / scale for v in recent]
    if all(d > threshold for d in deltas) or all(d < -threshold for d in deltas):
        return (median, recent[-1])
    return None


def scan_trend(
    entries: list[dict],
    metrics: tuple[str, ...] = ("wall_s", "accesses_per_sec"),
    window: int = 8,
    threshold: float = 0.25,
    sustain: int = 2,
) -> list[Drift]:
    """Drift findings across ``metrics`` over ``entries`` (one tool's runs)."""
    drifts: list[Drift] = []
    for metric in metrics:
        series = _metric_series(entries, metric)
        hit = detect_drift(series, window=window, threshold=threshold, sustain=sustain)
        if hit is None:
            continue
        median, latest = hit
        drifts.append(
            Drift(
                metric=metric,
                median=median,
                latest=latest,
                rel_delta=(latest - median) / max(abs(median), 1e-12),
                sustain=sustain,
            )
        )
    return drifts


def format_trend(
    entries: list[dict],
    metrics: tuple[str, ...] = ("wall_s", "accesses_per_sec"),
    window: int = 8,
    threshold: float = 0.25,
    sustain: int = 2,
    tail: int = 10,
) -> tuple[str, list[Drift]]:
    """Human trend report over one tool's entries + the drift findings.

    Shows the last ``tail`` runs' trajectory for each metric and a
    verdict line per metric (steady / drifting).
    """
    if not entries:
        return ("ledger is empty — record some runs first", [])
    drifts = scan_trend(
        entries, metrics=metrics, window=window, threshold=threshold, sustain=sustain
    )
    drifting = {d.metric: d for d in drifts}
    lines = [
        f"{len(entries)} run(s) on ledger for {entries[-1].get('tool', '?')} "
        f"(config {entries[-1].get('config_hash', '?')}, "
        f"code {entries[-1].get('code_salt', '?')})"
    ]
    for metric in metrics:
        series = _metric_series(entries, metric)
        if not series:
            continue
        recent = series[-tail:]
        trajectory = " -> ".join(f"{v:g}" for v in recent)
        lines.append(f"  {metric}: {trajectory}")
        if metric in drifting:
            lines.append(f"    DRIFT: {drifting[metric]}")
        else:
            baseline = series[:-sustain][-window:]
            if baseline:
                lines.append(
                    f"    steady (rolling median {_median(baseline):g}, "
                    f"latest {series[-1]:g})"
                )
            else:
                lines.append(
                    f"    {len(series)} run(s) — need {sustain + 1} for drift detection"
                )
    return ("\n".join(lines), drifts)
