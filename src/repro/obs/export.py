"""Exporters: Chrome/Perfetto trace-event JSON, Prometheus text, JSONL.

Three output formats, one per consumer:

- :func:`write_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev (open the file via
  "Open trace file").  Each runtime becomes a process; each span name
  becomes a thread-like track, so the miss path, eviction pipeline and
  reuse-pipeline stages render as parallel lanes on the virtual-time axis.
- :func:`prometheus_text` / :func:`write_prometheus` — the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` / samples), suitable
  for ``promtool`` or a textfile-collector scrape.  Counter names gain
  the conventional ``_total`` suffix; registry constant labels become
  sample labels, so several runtimes merge into one snapshot.
- :func:`write_jsonl` — one JSON object per line; used for windowed
  snapshot streams (:mod:`repro.obs.snapshots`) and ad-hoc tooling.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Mapping

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import SpanTracer

#: Trace timestamps are microseconds in the Trace Event Format; the
#: simulator's virtual clock is nanoseconds.
_NS_PER_US = 1000.0


def counter_track_events(pid: int, windows: Iterable[Mapping]) -> list[dict]:
    """Perfetto counter events (``ph: "C"``) from a window stream.

    Each snapshot window becomes up to two counter samples on the
    virtual-time axis: the Tier-1/Tier-2 occupancy gauges (one track,
    two series — Perfetto stacks multi-key counter args), and the
    window's Tier-2 bypass fraction of evictions.  Rendered above the
    span lanes, they show *when* the hierarchy filled up or started
    bypassing, in the same timeline as the misses that caused it.
    """
    events: list[dict] = []
    for window in windows:
        ts = float(window.get("gmt_virtual_time_ns", 0.0)) / _NS_PER_US
        occupancy: dict[str, float] = {}
        if "gmt_tier1_occupancy" in window:
            occupancy["tier1"] = float(window["gmt_tier1_occupancy"])
        if "gmt_tier2_occupancy" in window:
            occupancy["tier2"] = float(window["gmt_tier2_occupancy"])
        if occupancy:
            events.append(
                {
                    "name": "tier occupancy (pages)",
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "args": occupancy,
                }
            )
        evictions = window.get("gmt_t1_evictions")
        placements = window.get("gmt_t2_placements")
        if evictions is not None and placements is not None:
            bypassed = max(0.0, float(evictions) - float(placements))
            events.append(
                {
                    "name": "tier2 bypass rate",
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "args": {
                        "bypass": round(bypassed / evictions, 4) if evictions else 0.0
                    },
                }
            )
    return events


def chrome_trace_events(
    tracers: Mapping[str, SpanTracer] | Iterable[tuple[str, SpanTracer]],
    windows: Mapping[str, Iterable[Mapping]] | None = None,
) -> list[dict]:
    """Build Trace Event Format dicts from named tracers.

    Args:
        tracers: mapping (or pairs) of ``process name -> SpanTracer`` —
            one entry per runtime.
        windows: optional ``process name -> window stream`` (see
            :meth:`~repro.obs.telemetry.Telemetry.windows`); matching
            processes gain occupancy/bypass counter tracks
            (:func:`counter_track_events`).
    """
    items = tracers.items() if isinstance(tracers, Mapping) else list(tracers)
    # Metadata events (process/thread names) lead; timed events follow
    # sorted by timestamp so viewers never re-sort large traces.
    metadata: list[dict] = []
    events: list[dict] = []
    for pid, (process, tracer) in enumerate(items):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
        tids: dict[tuple, int] = {}
        for span in tracer:
            # Multi-tenant runs label spans with a ``tenant`` arg; keep
            # each tenant on its own track so lanes never interleave.
            tenant = span.args.get("tenant") if span.args else None
            track = (span.name, tenant)
            tid = tids.get(track)
            if tid is None:
                tid = len(tids)
                tids[track] = tid
                track_name = span.name if tenant is None else f"{span.name} [{tenant}]"
                metadata.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": track_name},
                    }
                )
            event = {
                "name": span.name,
                "cat": span.cat,
                "pid": pid,
                "tid": tid,
                "ts": span.ts_ns / _NS_PER_US,
            }
            if span.args:
                # Arg-less spans omit the key entirely (a bare ``"args":
                # null`` is tolerated by Perfetto but is pure noise).
                event["args"] = span.args
            if span.instant:
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = (span.dur_ns or 0.0) / _NS_PER_US
            events.append(event)
        if windows is not None and process in windows:
            events.extend(counter_track_events(pid, windows[process]))
    events.sort(key=lambda e: e["ts"])
    return metadata + events


def write_chrome_trace(
    path: str,
    tracers: Mapping[str, SpanTracer] | Iterable[tuple[str, SpanTracer]],
    windows: Mapping[str, Iterable[Mapping]] | None = None,
    metadata: Mapping[str, object] | None = None,
) -> int:
    """Write a Perfetto-loadable trace JSON; returns the event count.

    ``metadata`` lands under the payload's top-level ``"metadata"`` key
    (the Trace Event Format's free-form side channel — Perfetto shows it
    in the trace-info page).  The CLIs use it to stamp each trace with
    the resolved replay engine and the reason behind the resolution.
    """
    events = chrome_trace_events(tracers, windows=windows)
    payload: dict = {"traceEvents": events, "displayTimeUnit": "ns"}
    if metadata:
        payload["metadata"] = dict(metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(events)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """``# HELP`` line escaping: backslash and newline only (the
    exposition format leaves quotes alone on HELP lines)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in sorted(pairs.items()))
    return "{" + inner + "}"


def _bound_repr(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def prometheus_text(registries: MetricsRegistry | Iterable[MetricsRegistry]) -> str:
    """Render one or more registries in the Prometheus text format.

    Metrics sharing a name across registries (the same counter for
    several runtimes) emit one ``# HELP``/``# TYPE`` header and one sample
    per registry, distinguished by the registries' constant labels.
    """
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    lines: list[str] = []
    seen_headers: set[str] = set()

    # Group samples under a single header per exported name.
    grouped: dict[str, list[str]] = {}
    order: list[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        order.append(name)
        bucket = grouped.setdefault(name, [])
        if help_text:
            bucket.append(f"# HELP {name} {_escape_help(help_text)}")
        bucket.append(f"# TYPE {name} {kind}")

    for registry in registries:
        labels = registry.const_labels
        for metric in registry:
            if isinstance(metric, Histogram):
                name = metric.name
                header(name, "histogram", metric.help)
                bucket = grouped[name]
                for bound, cumulative in metric.bucket_counts():
                    le = dict(labels)
                    le["le"] = _bound_repr(bound)
                    bucket.append(f"{name}_bucket{_labels(le)} {cumulative}")
                bucket.append(f"{name}_sum{_labels(labels)} {metric.sum}")
                bucket.append(f"{name}_count{_labels(labels)} {metric.count}")
            elif isinstance(metric, Counter):
                name = metric.name if metric.name.endswith("_total") else f"{metric.name}_total"
                header(name, "counter", metric.help)
                grouped[name].append(f"{name}{_labels(labels)} {metric.value}")
            elif isinstance(metric, Gauge):
                name = metric.name
                header(name, "gauge", metric.help)
                grouped[name].append(f"{name}{_labels(labels)} {metric.value}")

    for name in order:
        lines.extend(grouped[name])
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(
    path: str,
    registries: MetricsRegistry | Iterable[MetricsRegistry],
    header: Iterable[str] | str | None = None,
) -> str:
    """Write a Prometheus text snapshot; returns the rendered text.

    ``header`` lines are emitted first as ``#`` comments (the exposition
    format ignores comment lines that are not HELP/TYPE), so snapshots
    can carry run provenance — the CLIs stamp the resolved replay engine
    here — without perturbing any scraper.
    """
    text = prometheus_text(registries)
    if header:
        if isinstance(header, str):
            header = [header]
        prefix = "".join(f"# {line}\n" for line in header)
        text = prefix + text
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(path: str, records: Iterable[Mapping]) -> int:
    """Write one JSON object per line; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(dict(record), default=str))
            fh.write("\n")
            count += 1
    return count
