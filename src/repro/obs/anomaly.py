"""Anomaly detection over windowed telemetry snapshots.

The :class:`~repro.obs.snapshots.WindowedSnapshotter` already cuts the
run into delta windows of every registered metric; this module scans
that stream for the three pathologies a tiered hierarchy exhibits:

- **thrash** — eviction/admit churn: a window where Tier-1 evictions per
  coalesced access exceed a threshold, i.e. the tier is cycling pages
  faster than it serves hits;
- **bypass storm** — a window where most Tier-1 evictions skip host
  memory entirely (Tier-2 bypasses), turning every future reuse into a
  full 3-tier SSD fault;
- **fault-latency tail spike** — a window whose mean demand-miss latency
  jumps above a multiple of the trailing mean of the preceding windows.

Detection is a pure function over the window dicts, so it runs equally
on a live :class:`~repro.obs.telemetry.Telemetry` (``telemetry.windows()``)
or on a ``*.windows.jsonl`` file loaded back from disk.  Found anomalies
can be stamped onto the span trace as instant events
(:meth:`AnomalyDetector.annotate`) so Perfetto shows them in context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigError
from repro.obs.tracing import SpanTracer


@dataclass(frozen=True)
class Anomaly:
    """One flagged window.

    Attributes:
        rule: ``thrash`` / ``bypass-storm`` / ``latency-spike``.
        window: the window's index in the stream.
        position: the window's end position (coalesced accesses).
        ts_ns: the window's virtual-time stamp (0.0 when the stream
            carries no ``gmt_virtual_time_ns`` gauge).
        value: the measured quantity that tripped the rule.
        threshold: the limit it tripped.
        message: human-readable one-liner.
    """

    rule: str
    window: int
    position: int
    ts_ns: float
    value: float
    threshold: float
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[window {self.window} @ {self.position}] {self.rule}: {self.message}"


class AnomalyDetector:
    """Scan window streams for thrash, bypass storms and latency spikes.

    Args:
        thrash_evictions_per_access: flag a window when Tier-1 evictions
            divided by the window's access span exceed this.
        bypass_fraction: flag a window when the fraction of Tier-1
            evictions that bypassed Tier-2 exceeds this.
        latency_spike_factor: flag a window whose mean fault latency
            exceeds ``factor x`` the trailing mean of prior windows.
        min_evictions: ignore windows with fewer evictions than this for
            the thrash/bypass rules (quiet windows are noise).
        min_faults: ignore windows with fewer demand misses than this
            for the latency rule.
    """

    def __init__(
        self,
        thrash_evictions_per_access: float = 0.5,
        bypass_fraction: float = 0.75,
        latency_spike_factor: float = 3.0,
        min_evictions: int = 16,
        min_faults: int = 16,
    ) -> None:
        if thrash_evictions_per_access <= 0:
            raise ConfigError("thrash_evictions_per_access must be positive")
        if not 0.0 < bypass_fraction <= 1.0:
            raise ConfigError("bypass_fraction must be in (0, 1]")
        if latency_spike_factor <= 1.0:
            raise ConfigError("latency_spike_factor must exceed 1.0")
        self.thrash_evictions_per_access = thrash_evictions_per_access
        self.bypass_fraction = bypass_fraction
        self.latency_spike_factor = latency_spike_factor
        self.min_evictions = min_evictions
        self.min_faults = min_faults

    # ------------------------------------------------------------------
    def scan(self, windows: Iterable[dict]) -> list[Anomaly]:
        """All anomalies in ``windows``, in stream order."""
        anomalies: list[Anomaly] = []
        trailing_latency_sum = 0.0
        trailing_fault_count = 0
        for window in windows:
            index = int(window.get("window", 0))
            position = int(window.get("position", 0))
            ts_ns = float(window.get("gmt_virtual_time_ns", 0.0))
            span = max(1, int(window.get("span", 1)))
            evictions = float(window.get("gmt_t1_evictions", 0.0))
            placements = float(window.get("gmt_t2_placements", 0.0))
            fault_sum = float(window.get("gmt_fault_latency_ns_sum", 0.0))
            fault_count = float(window.get("gmt_fault_latency_ns_count", 0.0))

            if evictions >= self.min_evictions:
                churn = evictions / span
                if churn >= self.thrash_evictions_per_access:
                    anomalies.append(
                        Anomaly(
                            rule="thrash",
                            window=index,
                            position=position,
                            ts_ns=ts_ns,
                            value=churn,
                            threshold=self.thrash_evictions_per_access,
                            message=(
                                f"{evictions:.0f} Tier-1 evictions over {span} accesses "
                                f"({churn:.2f}/access >= {self.thrash_evictions_per_access})"
                            ),
                        )
                    )
                bypasses = max(0.0, evictions - placements)
                fraction = bypasses / evictions
                if fraction >= self.bypass_fraction:
                    anomalies.append(
                        Anomaly(
                            rule="bypass-storm",
                            window=index,
                            position=position,
                            ts_ns=ts_ns,
                            value=fraction,
                            threshold=self.bypass_fraction,
                            message=(
                                f"{bypasses:.0f}/{evictions:.0f} evictions bypassed "
                                f"Tier-2 ({fraction:.0%} >= {self.bypass_fraction:.0%})"
                            ),
                        )
                    )

            if fault_count >= self.min_faults:
                mean = fault_sum / fault_count
                if trailing_fault_count >= self.min_faults:
                    trailing_mean = trailing_latency_sum / trailing_fault_count
                    if trailing_mean > 0 and mean >= self.latency_spike_factor * trailing_mean:
                        anomalies.append(
                            Anomaly(
                                rule="latency-spike",
                                window=index,
                                position=position,
                                ts_ns=ts_ns,
                                value=mean,
                                threshold=self.latency_spike_factor * trailing_mean,
                                message=(
                                    f"mean fault latency {mean:.0f} ns vs trailing "
                                    f"{trailing_mean:.0f} ns "
                                    f"(x{mean / trailing_mean:.1f} >= "
                                    f"x{self.latency_spike_factor})"
                                ),
                            )
                        )
                trailing_latency_sum += fault_sum
                trailing_fault_count += fault_count
        return anomalies

    # ------------------------------------------------------------------
    def annotate(self, tracer: SpanTracer, anomalies: Iterable[Anomaly]) -> int:
        """Stamp ``anomalies`` onto ``tracer`` as instant events (one
        ``anomaly/<rule>`` track per rule); returns the count."""
        count = 0
        for anomaly in anomalies:
            tracer.instant(
                f"anomaly:{anomaly.rule}",
                "anomaly",
                anomaly.ts_ns,
                window=anomaly.window,
                position=anomaly.position,
                value=round(anomaly.value, 4),
                threshold=round(anomaly.threshold, 4),
                message=anomaly.message,
            )
            count += 1
        return count

    def scan_and_annotate(self, telemetry) -> list[Anomaly]:
        """Scan a live :class:`~repro.obs.telemetry.Telemetry`'s windows
        and stamp every finding onto its tracer."""
        anomalies = self.scan(telemetry.windows())
        self.annotate(telemetry.tracer, anomalies)
        return anomalies
