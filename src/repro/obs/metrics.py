"""Typed metrics registry — the numeric pillar of :mod:`repro.obs`.

Three instrument kinds, modelled after Prometheus:

- :class:`Counter` — a monotonically increasing count (Tier-1 hits, SSD
  page reads).  :class:`BoundCounter` is a zero-overhead variant whose
  storage *is* an attribute of a host object (a
  :class:`~repro.core.stats.RuntimeStats` field): the hot path keeps its
  plain ``stats.t1_hits += 1`` increment and the registry reads the field
  only at export time.  This is what "RuntimeStats re-implemented on top
  of the registry" means here — the registry owns metric identity,
  metadata and export; the dataclass remains the storage.
- :class:`Gauge` — a value that can go up and down (Tier-2 occupancy,
  NVMe queue depth).  Supports callback mode for pull-at-export values
  (derived rates such as ``t1_hit_rate``).
- :class:`Histogram` — a distribution over log-scale (or explicit)
  buckets: per-tier access latency, reuse distances, PCIe/NVMe transfer
  sizes, Markov prediction confidence.  Log-scale buckets keep the
  bucket count small across the many orders of magnitude a tiered
  hierarchy spans (50 ns Tier-2 lookups to 100 us SSD reads).

A :class:`MetricsRegistry` names and holds the instruments of one run
(one runtime).  Registries carry constant labels (``runtime="GMT-Reuse"``)
so several runs can be merged into one exported snapshot.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Callable, Iterable

from repro.errors import ConfigError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigError(f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)")
    return name


class Metric:
    """Common identity of every instrument: name, help text, unit."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.unit = unit


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit)
        self._value = 0

    @property
    def value(self) -> int | float:
        return self._value

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount


class BoundCounter(Counter):
    """A counter whose storage is ``getattr(host, attr)``.

    The host object (typically a stats dataclass) keeps incrementing its
    plain attribute; the registry observes it lazily.  ``inc`` is
    intentionally unsupported — writes stay on the host's hot path.
    """

    def __init__(self, name: str, host: object, attr: str, help: str = "", unit: str = "") -> None:
        super().__init__(name, help, unit)
        if not hasattr(host, attr):
            raise ConfigError(f"cannot bind {name}: host has no attribute {attr!r}")
        self._host = host
        self._attr = attr

    @property
    def value(self) -> int | float:
        return getattr(self._host, self._attr)

    def inc(self, amount: int | float = 1) -> None:
        raise ConfigError(
            f"bound counter {self.name} is read-only; increment the host attribute"
        )


class Gauge(Metric):
    """A value that can go up and down; optionally callback-backed."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        fn: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(name, help, unit)
        self._value = 0.0
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ConfigError(f"gauge {self.name} is callback-backed; cannot set")
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


def log_buckets(start: float, factor: float, count: int) -> list[float]:
    """Geometric bucket upper bounds: ``start * factor**i`` for i in 0..count-1."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ConfigError(
            f"log_buckets needs start>0, factor>1, count>=1 "
            f"(got {start}, {factor}, {count})"
        )
    return [start * factor**i for i in range(count)]


def linear_buckets(start: float, width: float, count: int) -> list[float]:
    """Evenly spaced bucket upper bounds (for bounded metrics like [0, 1])."""
    if width <= 0 or count < 1:
        raise ConfigError(f"linear_buckets needs width>0, count>=1 (got {width}, {count})")
    return [start + width * i for i in range(count)]


class Histogram(Metric):
    """Bucketed distribution with count/sum/min/max.

    Default buckets are log-scale (powers of ``2`` from ``1``), sized for
    the dimensionless and byte/ns-scaled quantities the simulator emits.
    Observations beyond the last bound land in the implicit +Inf bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        buckets: Iterable[float] | None = None,
    ) -> None:
        super().__init__(name, help, unit)
        bounds = list(buckets) if buckets is not None else log_buckets(1.0, 2.0, 40)
        if not bounds or sorted(bounds) != bounds:
            raise ConfigError(f"histogram {name}: bucket bounds must be sorted and non-empty")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style,
        ending with ``(inf, total)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile (0 when
        empty).  Coarse by construction — log-scale buckets trade accuracy
        for always-on cheapness."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            if running >= target:
                return bound
        return self._max


class MetricsRegistry:
    """Named collection of instruments with constant labels.

    Args:
        const_labels: labels attached to every sample at export time
            (``{"runtime": "GMT-Reuse"}``); the Prometheus exporter renders
            them, the flat snapshot ignores them.
    """

    def __init__(self, const_labels: dict[str, str] | None = None) -> None:
        self.const_labels: dict[str, str] = dict(const_labels or {})
        self._metrics: dict[str, Metric] = {}

    # -- registration ---------------------------------------------------
    def register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ConfigError(
                    f"metric {metric.name!r} already registered as {existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self.register(Counter(name, help, unit))  # type: ignore[return-value]

    def bind_counter(
        self, name: str, host: object, attr: str, help: str = "", unit: str = ""
    ) -> BoundCounter:
        return self.register(BoundCounter(name, host, attr, help, unit))  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", unit: str = "", fn: Callable[[], float] | None = None
    ) -> Gauge:
        return self.register(Gauge(name, help, unit, fn))  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", unit: str = "", buckets: Iterable[float] | None = None
    ) -> Histogram:
        return self.register(Histogram(name, help, unit, buckets))  # type: ignore[return-value]

    # -- access ---------------------------------------------------------
    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ConfigError(f"unknown metric {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return list(self._metrics)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat scalar view: counters/gauges by name; histograms expand to
        ``name_count``/``name_sum``/``name_p50``/``name_p99``."""
        out: dict[str, float] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                out[f"{metric.name}_count"] = metric.count
                out[f"{metric.name}_sum"] = metric.sum
                out[f"{metric.name}_p50"] = metric.quantile(0.50)
                out[f"{metric.name}_p99"] = metric.quantile(0.99)
            else:
                out[metric.name] = metric.value  # type: ignore[union-attr]
        return out
