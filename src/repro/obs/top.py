"""``gmt-top`` — a live dashboard over windowed telemetry snapshots.

The :class:`~repro.obs.snapshots.WindowedSnapshotter` already cuts every
instrumented replay into delta windows; this module renders that stream
as a terminal dashboard while the replay runs, top(1)-style:

- **tier occupancy bars** — resident pages vs capacity for Tier-1/Tier-2
  (the ``gmt_tier{1,2}_occupancy`` gauges);
- **window rates** — Tier-1 hit rate, Tier-2 bypass fraction of
  evictions, demand faults and their mean latency inside the window,
  plus host-side replay throughput (accesses/sec between frames);
- **cumulative latency digest** — p50/p90/p99 of modelled miss latency
  from the streaming digest gauges (real percentiles, not buckets);
- **per-tenant table** — when serving a mix, each tenant's digest
  percentiles against its SLO targets (violations flagged ``!``);
- **anomaly flags** — the :class:`~repro.obs.anomaly.AnomalyDetector`
  runs over the window stream as it grows; fresh findings surface in
  the frame and the total rides in the footer.

Rendering is plain ANSI (clear + home per frame) — no curses dependency,
so output redirects cleanly.  ``--plain`` (the default when stdout is
not a TTY, e.g. CI) emits one summary line per window instead of
redrawing, which makes the dashboard pipeable and testable.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ConfigError
from repro.obs.anomaly import AnomalyDetector
from repro.units import format_time

#: ANSI: clear screen, cursor home.
_CLEAR = "\x1b[2J\x1b[H"

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    """``[#####.....]`` occupancy bar, clamped to [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _rate(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


class Dashboard:
    """Renders window dicts into dashboard frames (or plain lines).

    Wire it to a live run with :meth:`attach` (hooks the telemetry
    snapshotter's ``on_window``), or drive :meth:`update` by hand with
    recorded window dicts — the renderer only reads the dicts plus the
    optional tenant source, so tests and offline replays use the same
    path as the live CLI.

    Args:
        telemetry: the run's :class:`~repro.obs.telemetry.Telemetry`.
        title: headline (workload/runtime description).
        tier1_capacity / tier2_capacity: frame capacities for the bars.
        tenants: optional list of ``(name, digest, slo_p50, slo_p99)``
            providers; digests are read live at each frame.
        detector: anomaly detector (default thresholds when None).
        stream: output text stream (stdout).
        plain: one line per window instead of ANSI redraw.
        clock: host clock, injectable for tests.
    """

    def __init__(
        self,
        telemetry,
        title: str,
        tier1_capacity: int,
        tier2_capacity: int,
        tenants: list | None = None,
        detector: AnomalyDetector | None = None,
        stream=None,
        plain: bool = False,
        clock=time.perf_counter,
    ) -> None:
        if tier1_capacity < 1:
            raise ConfigError(f"tier1_capacity must be >= 1, got {tier1_capacity}")
        self.telemetry = telemetry
        self.title = title
        self.tier1_capacity = tier1_capacity
        self.tier2_capacity = tier2_capacity
        self.tenants = tenants or []
        self.detector = detector or AnomalyDetector()
        self.stream = stream if stream is not None else sys.stdout
        self.plain = plain
        self.clock = clock
        self.frames = 0
        self.anomalies: list = []
        self._last_wall: float | None = None
        self._last_position = 0
        self._throughput = 0.0

    # ------------------------------------------------------------------
    def attach(self) -> "Dashboard":
        """Subscribe to the telemetry's window stream."""
        self.telemetry.snapshotter.on_window = self.update
        return self

    def update(self, window: dict) -> None:
        """One freshly cut window: refresh rates, rescan, redraw."""
        now = self.clock()
        position = int(window.get("position", 0))
        if self._last_wall is not None and now > self._last_wall:
            self._throughput = (position - self._last_position) / (now - self._last_wall)
        self._last_wall = now
        self._last_position = position
        # Rescan the whole stream: the latency-spike rule is stateful
        # over trailing windows, so incremental scanning would need to
        # duplicate its bookkeeping.  Streams are thousands of windows
        # at most; the rescan is microseconds.
        self.anomalies = self.detector.scan(self.telemetry.windows())
        self.frames += 1
        if self.plain:
            self.stream.write(self.plain_line(window) + "\n")
        else:
            self.stream.write(_CLEAR + self.render(window))
        self.stream.flush()

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, window: dict) -> str:
        """The full dashboard frame for ``window`` (no ANSI codes)."""
        lines = [self._headline(window), ""]
        t1 = window.get("gmt_tier1_occupancy", 0.0)
        t2 = window.get("gmt_tier2_occupancy", 0.0)
        lines.append(
            f"  Tier-1 {_bar(_rate(t1, self.tier1_capacity))} "
            f"{t1:>6.0f}/{self.tier1_capacity}"
        )
        lines.append(
            f"  Tier-2 {_bar(_rate(t2, self.tier2_capacity))} "
            f"{t2:>6.0f}/{self.tier2_capacity}"
            if self.tier2_capacity
            else "  Tier-2 (disabled)"
        )
        lines.append("")
        lines.append("  window:     " + self._window_rates(window))
        lines.append("  cumulative: " + self._cumulative(window))
        if self.tenants:
            lines.append("")
            lines.append("  tenant          p50          p99     SLO p99  flags")
            for row in self.tenants:
                lines.append("  " + self._tenant_row(row))
        lines.append("")
        lines.append(self._anomaly_footer())
        return "\n".join(lines) + "\n"

    def plain_line(self, window: dict) -> str:
        """One-line summary per window (``--plain`` / non-TTY mode)."""
        t1 = window.get("gmt_tier1_occupancy", 0.0)
        t2 = window.get("gmt_tier2_occupancy", 0.0)
        hits = window.get("gmt_t1_hits", 0.0)
        misses = window.get("gmt_t1_misses", 0.0)
        evictions = window.get("gmt_t1_evictions", 0.0)
        placements = window.get("gmt_t2_placements", 0.0)
        bypass = _rate(max(0.0, evictions - placements), evictions)
        p99 = window.get("gmt_fault_latency_p99_ns", 0.0)
        flagged = sum(
            1 for a in self.anomalies if a.window == int(window.get("window", -1))
        )
        flags = f"  anomalies+{flagged}" if flagged else ""
        return (
            f"w{int(window.get('window', 0)):04d} @{int(window.get('position', 0))} "
            f"t1 {t1:.0f}/{self.tier1_capacity} t2 {t2:.0f}/{self.tier2_capacity} "
            f"hit {_rate(hits, hits + misses):4.0%} byp {bypass:4.0%} "
            f"p99 {format_time(p99)}{flags}"
        )

    def _headline(self, window: dict) -> str:
        sim_ns = window.get("gmt_virtual_time_ns", 0.0)
        return (
            f"gmt-top — {self.title}  "
            f"(window {int(window.get('window', 0))}, "
            f"access {int(window.get('position', 0))}, "
            f"sim {format_time(sim_ns)})"
        )

    def _window_rates(self, window: dict) -> str:
        hits = window.get("gmt_t1_hits", 0.0)
        misses = window.get("gmt_t1_misses", 0.0)
        evictions = window.get("gmt_t1_evictions", 0.0)
        placements = window.get("gmt_t2_placements", 0.0)
        faults = window.get("gmt_fault_latency_ns_count", 0.0)
        fault_sum = window.get("gmt_fault_latency_ns_sum", 0.0)
        bypass = _rate(max(0.0, evictions - placements), evictions)
        mean = format_time(_rate(fault_sum, faults)) if faults else "-"
        throughput = (
            f"{self._throughput / 1e3:.1f}k acc/s host"
            if self._throughput
            else "- acc/s host"
        )
        return (
            f"hit {_rate(hits, hits + misses):4.0%}  bypass {bypass:4.0%}  "
            f"faults {faults:.0f}  mean fault {mean}  {throughput}"
        )

    def _cumulative(self, window: dict) -> str:
        hit_rate = window.get("gmt_t1_hit_rate", 0.0)
        parts = [f"hit {hit_rate:4.0%}"]
        for q in ("p50", "p90", "p99"):
            value = window.get(f"gmt_fault_latency_{q}_ns")
            if value is not None:
                parts.append(f"{q} {format_time(value)}")
        return "  ".join(parts)

    def _tenant_row(self, row) -> str:
        name, digest, slo_p50, slo_p99 = row
        if digest.count == 0:
            return f"{name:<12} {'-':>12} {'-':>12} {'-':>11}"
        p50, p99 = digest.p50, digest.p99
        flags = []
        if slo_p50 is not None and p50 > slo_p50:
            flags.append("p50!")
        if slo_p99 is not None and p99 > slo_p99:
            flags.append("p99!")
        slo_cell = format_time(slo_p99) if slo_p99 is not None else "-"
        return (
            f"{name:<12} {format_time(p50):>12} {format_time(p99):>12} "
            f"{slo_cell:>11}  {' '.join(flags)}"
        )

    def _anomaly_footer(self) -> str:
        if not self.anomalies:
            return "  anomalies: none"
        latest = self.anomalies[-1]
        return f"  anomalies: {len(self.anomalies)} total — latest {latest}"

    # ------------------------------------------------------------------
    def finish(self) -> str:
        """End-of-run summary line (printed after the last frame).

        First flushes the telemetry's final partial window — everything
        after the last full interval boundary — so it renders as a
        frame/line too.  ``GMTRuntime.run`` (both engines) already
        flushes at end-of-run, in which case this is a no-op; the
        explicit flush covers drivers that iterate access-by-access and
        never call ``run`` (``Telemetry.finish`` is idempotent).
        """
        finish = getattr(self.telemetry, "finish", None)
        if finish is not None:
            finish()
        summary = (
            f"{self.frames} windows rendered, {len(self.anomalies)} anomalies"
        )
        for rule in ("thrash", "bypass-storm", "latency-spike"):
            count = sum(1 for a in self.anomalies if a.rule == rule)
            if count:
                summary += f"  [{rule}: {count}]"
        return summary


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-top``.

    Replays a workload (or a served tenant mix with ``--tenants``) with
    telemetry attached and renders the dashboard live::

        gmt-top hotspot --scale 1024
        gmt-top --tenants bfs,hotspot:2 --slo-p99 5e6 --plain
    """
    from repro.core.config import DEFAULT_SCALE
    from repro.experiments.harness import (
        RUNTIME_KINDS,
        RUNTIME_LABELS,
        build_runtime,
        default_config,
        get_workload,
    )
    from repro.obs import Telemetry
    from repro.workloads.registry import WORKLOAD_NAMES

    parser = argparse.ArgumentParser(
        prog="gmt-top",
        description="Live dashboard over a replay's windowed telemetry",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        choices=sorted(WORKLOAD_NAMES),
        help="Table 2 application (omit when using --tenants)",
    )
    parser.add_argument(
        "--tenants",
        metavar="W1[:WEIGHT],...",
        default=None,
        help="serve a tenant mix instead of a single replay "
        "(per-tenant digest table)",
    )
    parser.add_argument(
        "--runtime",
        default="reuse",
        choices=list(RUNTIME_KINDS),
        help="runtime kind for single-workload mode (default: reuse)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"byte-scale divisor vs the paper's platform (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--oversubscription",
        type=float,
        default=2.0,
        help="working set / (Tier-1 + Tier-2) capacity (default 2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    parser.add_argument(
        "--window",
        type=int,
        default=2_000,
        help="refresh interval in coalesced accesses (default 2000)",
    )
    parser.add_argument(
        "--slo-p50", type=float, metavar="NS", default=None,
        help="with --tenants: p50 miss-latency SLO target per tenant (ns)",
    )
    parser.add_argument(
        "--slo-p99", type=float, metavar="NS", default=None,
        help="with --tenants: p99 miss-latency SLO target per tenant (ns)",
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="one summary line per window instead of ANSI redraw "
        "(automatic when stdout is not a TTY)",
    )
    args = parser.parse_args(argv)

    if (args.workload is None) == (args.tenants is None):
        parser.error("give exactly one of a workload name or --tenants")

    plain = args.plain or not sys.stdout.isatty()
    telemetry = Telemetry(window=args.window)

    if args.tenants is not None:
        from dataclasses import replace

        from repro.cli import _parse_tenants
        from repro.serve import QuotaConfig, TenantServer, build_tenants

        config = default_config(args.scale)
        specs = _parse_tenants(args.tenants)
        if args.slo_p50 is not None or args.slo_p99 is not None:
            specs = [
                replace(s, slo_p50_ns=args.slo_p50, slo_p99_ns=args.slo_p99)
                for s in specs
            ]
        streams = build_tenants(
            specs, config, oversubscription=args.oversubscription, seed=args.seed
        )
        server = TenantServer(config, streams, quota=QuotaConfig())
        server.attach_telemetry(telemetry)
        dash = Dashboard(
            telemetry,
            title=f"serving {len(streams)} tenants ({args.tenants})",
            tier1_capacity=config.tier1_frames,
            tier2_capacity=config.tier2_frames,
            tenants=[
                (s.name, server.runtime.tenant_digests[s.index],
                 s.spec.slo_p50_ns, s.spec.slo_p99_ns)
                for s in streams
            ],
            plain=plain,
        ).attach()
        server.run(solo_baselines=False)
    else:
        config = default_config(args.scale)
        workload = get_workload(
            args.workload,
            config,
            oversubscription=args.oversubscription,
            seed=args.seed,
        )
        runtime = build_runtime(args.runtime, config)
        runtime.attach_telemetry(telemetry)
        dash = Dashboard(
            telemetry,
            title=f"{RUNTIME_LABELS[args.runtime]} replaying {workload.name}",
            tier1_capacity=config.tier1_frames,
            tier2_capacity=config.tier2_frames,
            plain=plain,
        ).attach()
        runtime.run(workload)

    print(dash.finish())
    return 0


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main())
