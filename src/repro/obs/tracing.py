"""Span tracing over the simulator's virtual clock.

A :class:`Span` is one timed pipeline step — a demand miss, a Tier-2
lookup, an eviction, a writeback, a reuse-pipeline stage — stamped on the
runtime's *simulated* time axis (accumulated modelled nanoseconds), not
wall time.  The resulting timeline is the one Figure 2 draws: what the
hierarchy was doing, when, for how long.

Spans are recorded by a :class:`SpanTracer`, which is bounded (drop-oldest)
so always-on tracing cannot exhaust memory on million-access runs.  The
*null-sink fast path* lives at the emission points, not here: a runtime
without telemetry holds ``self._obs = None`` and each instrumented site
costs exactly one attribute check (see :mod:`repro.core.runtime`).

Track sequencing: Chrome trace viewers render same-thread complete events
as a stack, which looks wrong for a simulator whose virtual clock advances
in coarse steps (several sub-spans of one miss share a timestamp).  The
tracer therefore keeps a per-track cursor and nudges each span's start to
the end of its track's previous span, so every named track renders as a
clean sequential lane in Perfetto.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """One traced pipeline step on the virtual-time axis (ns)."""

    name: str
    cat: str
    ts_ns: float
    dur_ns: float | None = None  # None = instant event
    args: dict = field(default_factory=dict)

    @property
    def instant(self) -> bool:
        return self.dur_ns is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dur = "instant" if self.dur_ns is None else f"{self.dur_ns:.0f} ns"
        return f"[{self.ts_ns:>12.0f}] {self.cat}/{self.name} ({dur})"


class SpanTracer:
    """Bounded recorder of :class:`Span`.

    Args:
        capacity: keep only the most recent N spans (None = unbounded;
            fine for tests and short runs, unwise for production replays).
    """

    def __init__(self, capacity: int | None = 100_000) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None: {capacity}")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._emitted = 0
        self._cursors: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans)

    @property
    def emitted(self) -> int:
        """Total spans ever recorded (including since-dropped ones)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Spans lost to the capacity bound."""
        return self._emitted - len(self._spans)

    def record(self, name: str, cat: str, ts_ns: float, dur_ns: float | None = None, **args) -> Span:
        """Record one span; returns it (with its track-sequenced start)."""
        cursor = self._cursors.get(name, 0.0)
        if ts_ns < cursor:
            ts_ns = cursor
        if dur_ns is not None:
            self._cursors[name] = ts_ns + dur_ns
        span = Span(name=name, cat=cat, ts_ns=ts_ns, dur_ns=dur_ns, args=args)
        self._spans.append(span)
        self._emitted += 1
        return span

    def instant(self, name: str, cat: str, ts_ns: float, **args) -> Span:
        """Record a zero-duration marker event."""
        return self.record(name, cat, ts_ns, None, **args)

    def spans(self, cat: str | None = None, name: str | None = None) -> list[Span]:
        """Filtered snapshot (both filters optional)."""
        return [
            s
            for s in self._spans
            if (cat is None or s.cat == cat) and (name is None or s.name == name)
        ]

    def by_name(self) -> dict[str, tuple[int, float]]:
        """Aggregate ``{name: (count, total_dur_ns)}`` over retained spans."""
        agg: dict[str, tuple[int, float]] = {}
        for span in self._spans:
            count, total = agg.get(span.name, (0, 0.0))
            agg[span.name] = (count + 1, total + (span.dur_ns or 0.0))
        return agg

    def hottest(self, n: int = 5) -> list[tuple[str, int, float]]:
        """Top ``n`` span names by total duration: ``(name, count, total_ns)``."""
        agg = self.by_name()
        ranked = sorted(
            ((name, count, total) for name, (count, total) in agg.items()),
            key=lambda item: item[2],
            reverse=True,
        )
        return ranked[:n]

    def clear(self) -> None:
        self._spans.clear()
        self._cursors.clear()
        self._emitted = 0
