"""The :class:`Telemetry` facade — one object per instrumented run.

Bundles the three pillars of :mod:`repro.obs` for a runtime:

- a :class:`~repro.obs.metrics.MetricsRegistry` holding the runtime's
  counters (bound to :class:`~repro.core.stats.RuntimeStats` fields and
  the PCIe/NVMe byte accounting), derived-rate gauges, and the always-on
  histograms (fault latency, transfer sizes, reuse distances, Markov
  confidence);
- a :class:`~repro.obs.tracing.SpanTracer` fed by the runtime's miss
  path, eviction pipeline, Tier-2 maintenance, writeback, and the reuse
  pipeline's sampler/regression stages;
- a :class:`~repro.obs.snapshots.WindowedSnapshotter` emitting periodic
  delta windows over the registry (unified with
  :class:`~repro.core.timeline.StatsTimeline`).

Wiring is one call::

    runtime = GMTRuntime(config)
    telemetry = runtime.attach_telemetry()
    runtime.run(workload)
    write_chrome_trace("trace.json", {telemetry.name: telemetry.tracer})
    write_prometheus("metrics.prom", telemetry.registry)

Disabled telemetry is the default and costs one ``self._obs is None``
check per emission point in the runtime — no registry, no tracer, no
allocation (see docs/observability.md for the measured overhead).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.obs.digest import LatencyDigest
from repro.obs.metrics import Histogram, MetricsRegistry, linear_buckets, log_buckets
from repro.obs.snapshots import WindowedSnapshotter
from repro.obs.tracing import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import GMTRuntime


class Telemetry:
    """Metrics + spans + windows for one runtime replay.

    Args:
        labels: extra constant labels for the registry (merged with the
            runtime's own labels at attach time).
        trace_capacity: span bound for the tracer (None = unbounded).
        window: delta-window interval in coalesced accesses.
        lifecycle: enable the page-lifecycle flight recorder
            (:mod:`repro.obs.lifecycle`): ``False`` (default, off),
            ``True`` (on, default ring capacity), or an ``int`` ring
            capacity.  Off costs nothing — the runtime keeps its
            ``self._flight is None`` fast path.
        lifecycle_sample_rate: record only a deterministic hash-sampled
            subset of pages' journeys
            (:class:`~repro.obs.batch.SampledLifecycleRecorder`).  The
            sampled recorder is batch-capable, so — unlike the full ring
            — it does not force the vector engine back to the scalar
            loop.  Implies ``lifecycle`` when set.
    """

    def __init__(
        self,
        labels: dict[str, str] | None = None,
        trace_capacity: int | None = 100_000,
        window: int = 10_000,
        lifecycle: bool | int = False,
        lifecycle_sample_rate: float | None = None,
    ) -> None:
        self.registry = MetricsRegistry(const_labels=labels)
        self.tracer = SpanTracer(capacity=trace_capacity)
        self.name = labels.get("runtime", "run") if labels else "run"
        self._runtime: GMTRuntime | None = None
        self._cost = None  # the runtime's CostModel; drives the trace clock
        #: Optional page-lifecycle flight recorder (None = disabled).
        self.lifecycle = None
        if lifecycle or lifecycle_sample_rate is not None:
            self.enable_lifecycle(
                capacity=lifecycle if not isinstance(lifecycle, bool) else 100_000,
                sample_rate=lifecycle_sample_rate,
            )

    # -- instruments that exist before attach (usable standalone) -------
        reg = self.registry
        self.fault_latency: Histogram = reg.histogram(
            "gmt_fault_latency_ns",
            help="Critical-path latency of one Tier-1 demand miss",
            unit="ns",
            buckets=log_buckets(16.0, 2.0, 34),
        )
        self.pcie_transfer_bytes: Histogram = reg.histogram(
            "gmt_pcie_transfer_bytes",
            help="Size of individual Tier-1<->Tier-2 PCIe transfers",
            unit="bytes",
            buckets=log_buckets(1024.0, 2.0, 14),
        )
        self.nvme_io_bytes: Histogram = reg.histogram(
            "gmt_nvme_io_bytes",
            help="Size of individual NVMe read/write commands",
            unit="bytes",
            buckets=log_buckets(1024.0, 2.0, 14),
        )
        self.transfer_batch_pages: Histogram = reg.histogram(
            "gmt_transfer_batch_pages",
            help="Non-contiguous pages per transfer-engine batch",
            unit="pages",
            buckets=log_buckets(1.0, 2.0, 10),
        )
        self.reuse_distance: Histogram = reg.histogram(
            "gmt_reuse_distance",
            help="Sampled exact reuse distances (sampling window only)",
            buckets=log_buckets(1.0, 2.0, 26),
        )
        self.markov_confidence: Histogram = reg.histogram(
            "gmt_markov_confidence",
            help="Winning-transition weight share behind each Markov prediction",
            buckets=linear_buckets(0.1, 0.1, 10),
        )
        #: Streaming quantile digest over modelled miss latency — real
        #: percentiles (0.5% relative error), unlike the factor-of-2
        #: histogram buckets.  Exposed as callback gauges so snapshots,
        #: windows, and the Prometheus/JSONL exporters all carry them.
        self.latency_digest = LatencyDigest()
        for q_name, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
            reg.gauge(
                f"gmt_fault_latency_{q_name}_ns",
                help=f"Streaming-digest {q_name} of modelled miss latency",
                unit="ns",
                fn=lambda q=q: self.latency_digest.quantile(q),
            )
        self.snapshotter = WindowedSnapshotter(reg, interval=window)

    # ------------------------------------------------------------------
    # page-lifecycle flight recorder (optional)
    # ------------------------------------------------------------------
    def enable_lifecycle(
        self,
        capacity: int | None = 100_000,
        sample_rate: float | None = None,
    ):
        """Create (or return) the lifecycle flight recorder.

        Call before ``attach`` (or pass ``lifecycle=`` /
        ``lifecycle_sample_rate=`` to the constructor); the recorder is
        wired into the runtime's emission sites at attach time.  With
        ``sample_rate`` set, the recorder is a batch-capable
        :class:`~repro.obs.batch.SampledLifecycleRecorder` — the vector
        engine keeps its bulk hit path.  Returns the recorder.
        """
        if self.lifecycle is None:
            if sample_rate is not None:
                from repro.obs.batch import SampledLifecycleRecorder

                self.lifecycle = SampledLifecycleRecorder(
                    sample_rate, capacity=capacity
                )
            else:
                from repro.obs.lifecycle import LifecycleRecorder

                self.lifecycle = LifecycleRecorder(capacity=capacity)
            self.lifecycle.clock = lambda: self.now_ns
            if self._runtime is not None:
                self._runtime._flight = self.lifecycle
        return self.lifecycle

    # ------------------------------------------------------------------
    # batch-aware pipeline (see repro.obs.batch)
    # ------------------------------------------------------------------
    @property
    def batch_capable(self) -> bool:
        """Whether the vector engine may retire hit runs in bulk under
        this telemetry.

        True unless a per-access consumer is attached: the windows,
        digests, histograms, spans and counter tracks all observe only
        on scalar-side events (misses and window boundaries), so the
        only instrument that can object is a full lifecycle ring
        (`gmt-why`'s unsampled default).
        """
        from repro.obs.batch import is_batch_capable

        return self.lifecycle is None or is_batch_capable(self.lifecycle)

    def batch_observer(self):
        """The per-batch observer chain the vector engine drives
        (None when an attached instrument is not batch-capable — the
        engine then falls back to the scalar loop)."""
        if not self.batch_capable:
            return None
        from repro.obs.batch import BatchObserverChain, WindowBatchObserver

        return BatchObserverChain([WindowBatchObserver(self.snapshotter)])

    # ------------------------------------------------------------------
    # virtual clock
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> float:
        """Simulated-time cursor: the runtime's accumulated modelled ns."""
        if self._cost is None:
            return 0.0
        return self._cost.compute_ns + self._cost.fault_latency_ns

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, runtime: "GMTRuntime") -> "Telemetry":
        """Bind this telemetry to ``runtime`` (one runtime per Telemetry)."""
        if self._runtime is not None and self._runtime is not runtime:
            raise ConfigError("Telemetry is already attached to another runtime")
        self._runtime = runtime
        self._cost = runtime.cost
        self.name = runtime.name

        reg = self.registry
        for key, value in runtime.obs_labels().items():
            reg.const_labels.setdefault(key, str(value))

        # RuntimeStats counters/rates become registry metrics (zero-copy).
        runtime.stats.bind_registry(reg)

        # Link/device byte accounting.
        pcie = runtime.pcie
        reg.bind_counter("gmt_pcie_h2d_bytes", pcie, "h2d_bytes",
                         help="Host-to-device (Tier-2 fetch) bytes", unit="bytes")
        reg.bind_counter("gmt_pcie_d2h_bytes", pcie, "d2h_bytes",
                         help="Device-to-host (Tier-2 placement) bytes", unit="bytes")
        reg.bind_counter("gmt_pcie_h2d_transfers", pcie, "h2d_transfers")
        reg.bind_counter("gmt_pcie_d2h_transfers", pcie, "d2h_transfers")
        ssd = runtime.ssd
        reg.bind_counter("gmt_nvme_read_bytes", ssd, "read_bytes", unit="bytes")
        reg.bind_counter("gmt_nvme_write_bytes", ssd, "write_bytes", unit="bytes")
        reg.gauge("gmt_nvme_queue_depth",
                  help="NVMe queue-pair depth the runtime sustains",
                  fn=lambda s=ssd: s.queue_depth)
        reg.gauge("gmt_tier1_occupancy", help="Resident Tier-1 pages",
                  fn=lambda t=runtime.tier1: len(t))
        reg.gauge("gmt_tier2_occupancy", help="Resident Tier-2 pages",
                  fn=lambda t=runtime.tier2: len(t))
        reg.gauge("gmt_t1_access_ns",
                  help="Modelled GPU-memory access latency (per-tier latency floor)",
                  fn=lambda p=runtime.config.platform: p.gpu_access_ns)
        reg.gauge("gmt_virtual_time_ns",
                  help="Accumulated modelled time (the trace clock); windows "
                       "capture it so window streams join onto the span axis",
                  fn=lambda: self.now_ns)

        # Flight recorder: hand the runtime the emission-site hook.
        if self.lifecycle is not None:
            runtime._flight = self.lifecycle

        # Size observers on the device models (None-guarded hot hooks).
        pcie.observer = self.pcie_transfer_bytes.observe
        ssd.observer = self._observe_nvme
        runtime.engine.observer = self._observe_transfer

        # Reuse-pipeline hooks (policy decides what it can offer).
        attach = getattr(runtime.policy, "attach_telemetry", None)
        if attach is not None:
            attach(self)

        # Delta windows start from the just-bound counters' current state.
        self.snapshotter.rebaseline(runtime.stats.coalesced_accesses)
        return self

    def finish(self) -> None:
        """Flush the final partial snapshot window (end-of-run hook).

        Called automatically by ``GMTRuntime.run`` and at detach;
        idempotent, so driving the runtime access-by-access and calling
        this once at the end is also fine.
        """
        if self._runtime is not None:
            self.snapshotter.flush(self._runtime.stats.coalesced_accesses)

    def detach(self) -> None:
        """Unhook from the runtime (the runtime clears its own ``_obs``)."""
        runtime = self._runtime
        if runtime is None:
            return
        self.finish()
        runtime.pcie.observer = None
        runtime.ssd.observer = None
        runtime.engine.observer = None
        if runtime._flight is self.lifecycle:
            runtime._flight = None
        attach = getattr(runtime.policy, "attach_telemetry", None)
        if attach is not None:
            attach(None)
        self._runtime = None

    # -- device observer shims ------------------------------------------
    def _observe_nvme(self, num_bytes: int, write: bool) -> None:
        self.nvme_io_bytes.observe(num_bytes)

    def _observe_transfer(self, num_pages: int, mechanism: str) -> None:
        if num_pages:
            self.transfer_batch_pages.observe(num_pages)

    # ------------------------------------------------------------------
    # emission API used by the runtime's instrumented sites
    # ------------------------------------------------------------------
    def span(self, name: str, cat: str, dur_ns: float, **args) -> None:
        """Record a timed span at the current virtual time."""
        self.tracer.record(name, cat, self.now_ns, dur_ns, **args)

    def instant(self, name: str, cat: str, **args) -> None:
        """Record a zero-duration marker at the current virtual time."""
        self.tracer.instant(name, cat, self.now_ns, **args)

    def on_miss(self, page: int, fault_ns: float, source: str) -> None:
        """One serviced demand miss: span + latency histogram + digest."""
        self.fault_latency.observe(fault_ns)
        self.latency_digest.observe(fault_ns)
        self.tracer.record("miss", "access", self.now_ns, fault_ns, page=page, src=source)

    def tick(self, position: int) -> None:
        """Advance the delta-window clock (called per coalesced access)."""
        self.snapshotter.maybe_snapshot(position)

    # ------------------------------------------------------------------
    # export conveniences
    # ------------------------------------------------------------------
    def windows(self) -> list[dict]:
        return self.snapshotter.windows()

    def snapshot(self) -> dict[str, float]:
        return self.registry.snapshot()
