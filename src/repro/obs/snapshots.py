"""Windowed registry snapshots — the always-on sibling of StatsTimeline.

:class:`~repro.core.timeline.StatsTimeline` snapshots a fixed, hand-picked
subset of :class:`~repro.core.stats.RuntimeStats` counters.  Once those
counters are registered in a :class:`~repro.obs.metrics.MetricsRegistry`
(see ``RuntimeStats.bind_registry``), the same delta-window mechanism can
cover *every* registered metric without a hand-maintained list — that is
what :class:`WindowedSnapshotter` does.  Both produce deltas over windows
of the same position axis (coalesced accesses), so their windows line up
and a timeline-driven run can feed registry windows for free (see
``StatsTimeline(..., telemetry=...)``).

Counters report the delta accrued inside the window; gauges report their
instantaneous value at the window boundary; histograms report count/sum
deltas.  Each window is a flat JSON-ready dict, so a stream of windows
exports directly via :func:`repro.obs.export.write_jsonl`.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class WindowedSnapshotter:
    """Delta snapshots of a registry every ``interval`` position units."""

    def __init__(self, registry: MetricsRegistry, interval: int = 10_000) -> None:
        if interval < 1:
            raise ConfigError(f"interval must be >= 1, got {interval}")
        self.registry = registry
        self.interval = interval
        #: Optional live hook: called with each freshly cut window dict
        #: (gmt-top's feed).  None costs one comparison per window.
        self.on_window = None
        self._windows: list[dict] = []
        self._last_position = 0
        self._last = self._capture()

    def _capture(self) -> dict[str, float]:
        counts: dict[str, float] = {}
        for metric in self.registry:
            if isinstance(metric, Histogram):
                counts[f"{metric.name}_count"] = metric.count
                counts[f"{metric.name}_sum"] = metric.sum
            elif isinstance(metric, Counter):
                counts[metric.name] = metric.value
        return counts

    def rebaseline(self, position: int = 0) -> None:
        """Reset the delta baseline to the registry's current values
        (called after attach-time metric registration)."""
        self._last = self._capture()
        self._last_position = position

    def flush(self, position: int) -> dict | None:
        """Cut the final partial window at end-of-run/detach.

        Without this, the tail of a replay — everything after the last
        full interval boundary — silently drops out of :meth:`windows`.
        Idempotent: a position that has not advanced cuts nothing.
        """
        if position <= self._last_position:
            return None
        return self.snapshot(position)

    def add_batch(self, position: int) -> list[dict]:
        """Advance the window clock past a bulk-retired access batch.

        The vector engine calls this once per retired hit run instead of
        one :meth:`maybe_snapshot` per access.  Cuts one window per
        interval boundary the batch crossed, each stamped at the exact
        boundary position — so the window *positions* always match a
        scalar replay.  Returns the windows cut.

        Byte-identical window *contents* additionally require that no
        batch crosses a boundary (counters would capture post-batch
        values): :class:`repro.obs.batch.WindowBatchObserver` caps each
        batch to end just before the next boundary, so in the engine's
        use this method cuts nothing and the boundary access itself
        replays through the scalar path.  Crossing boundaries here is
        still well-defined (positions exact, contents end-of-batch) for
        callers that feed coarser aggregates.
        """
        out = []
        while position - self._last_position >= self.interval:
            out.append(self.snapshot(self._last_position + self.interval))
        return out

    def maybe_snapshot(self, position: int) -> dict | None:
        """Snapshot if ``position`` advanced a full interval past the last
        boundary; returns the new window dict (or None)."""
        if position - self._last_position < self.interval:
            return None
        return self.snapshot(position)

    def snapshot(self, position: int) -> dict:
        """Force a window boundary at ``position``."""
        now = self._capture()
        window: dict = {
            "window": len(self._windows),
            "position": position,
            "span": position - self._last_position,
        }
        # Metrics may register after construction (attach-time bindings);
        # a missing baseline reads as zero.
        for name, value in now.items():
            window[name] = value - self._last.get(name, 0)
        for metric in self.registry:
            if isinstance(metric, Gauge):
                window[metric.name] = metric.value
        self._windows.append(window)
        self._last = now
        self._last_position = position
        if self.on_window is not None:
            self.on_window(window)
        return window

    def windows(self) -> list[dict]:
        return list(self._windows)

    def series(self, name: str) -> list[float]:
        """One window field across all windows."""
        if self._windows and name not in self._windows[0]:
            raise ConfigError(f"unknown window field {name!r}")
        return [w[name] for w in self._windows]
