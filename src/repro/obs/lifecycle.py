"""Page-lifecycle flight recorder — *where pages go and why*, per page.

GMT's contribution is the reuse-predicted insertion decision (paper
section 2.1.3): every clock-nominated Tier-1 victim is routed to Tier-2,
Tier-3, or retained, based on a predicted reuse class.  The aggregate
telemetry (:mod:`repro.obs.metrics`) says *how often* each route was
taken; this module records *which page took which route, when, and why*,
so causal questions become answerable after the fact:

- why did access N miss?  (``gmt-why miss <access-idx>``)
- what was page P's full tier journey?  (``gmt-why page <id>``)
- which mispredicted bypasses cost the most SSD I/O?  (``gmt-why top``)
- how long do pages actually live in each tier?  (``gmt-why residency``)

The :class:`LifecycleRecorder` is a bounded drop-oldest ring, exactly
like :class:`~repro.obs.tracing.SpanTracer`: always-on recording cannot
exhaust memory on million-access replays.  Disabled is the default and
follows the ``self._flight is None`` discipline — one attribute check
per emission site, no allocation (see :mod:`repro.core.runtime`).

Every event carries the *virtual time* twice: the coalesced-access
position (the axis queries join on) and the modelled nanosecond clock
(the axis Perfetto renders).  Placement-decision events additionally
carry the policy's predicted reuse class, and :class:`ReusePolicy
<repro.core.policies.ReusePolicy>` emits ``RESOLVE`` events when a
page's *actual* class becomes known — so predicted-vs-actual joins per
page fall out of one log.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import ConfigError


class LifecycleKind(enum.Enum):
    """Every recorded page-lifecycle transition."""

    #: Tier-3 -> Tier-1: demand (or prefetch) fill from the SSD up-path.
    ADMIT = "admit"
    #: Tier-2 -> Tier-1: host-memory hit promoted over PCIe.
    PROMOTE = "promote"
    #: Tier-1 -> Tier-1: clock victim granted a short-reuse second chance.
    RETAIN = "retain"
    #: Tier-1 -> Tier-2: victim placed into host memory.
    DEMOTE = "demote"
    #: Tier-1 -> Tier-3: victim bypassed host memory (discard/writeback).
    BYPASS = "bypass"
    #: Tier-2 -> Tier-3: FIFO/clock eviction of a host-memory resident.
    T2_EVICT = "t2-evict"
    #: Dirty copy flushed to the SSD (rides on a bypass or Tier-2 evict).
    WRITEBACK = "writeback"
    #: The page's *actual* reuse class became known (policy resolution).
    RESOLVE = "resolve"


#: Kinds that install a page into Tier-1 — the events ``miss`` queries
#: anchor on (each carries the access index of the faulting access).
FILL_KINDS = (LifecycleKind.ADMIT, LifecycleKind.PROMOTE)
#: Kinds that remove a page from Tier-1.
EXIT_KINDS = (LifecycleKind.DEMOTE, LifecycleKind.BYPASS)


@dataclass(frozen=True, slots=True)
class LifecycleEvent:
    """One page-lifecycle transition.

    Attributes:
        seq: global emission index (monotonic; survives ring drops).
        access: coalesced-access position when the event fired.
        ts_ns: modelled virtual time (same axis as the span tracer).
        page: the page id.
        kind: which transition.
        tier_from / tier_to: ``"T1"``/``"T2"``/``"T3"`` (``"-"`` = n/a).
        cause: why — ``demand-miss``, ``predicted-medium``,
            ``predicted-long``, ``heuristic-forced-tier2``,
            ``cold-fallback``, ``retention-override``, ``policy-static``,
            ``tier2-capacity``, ``t2-quota-denied``, ``t2-full-bypass``,
            ``prefetch``, ``dirty-writeback``, ``correct``/``mispredicted``.
        predicted: the policy's predicted reuse class behind a placement
            decision (``short``/``medium``/``long``), None when the
            policy did not predict.
        dirty: whether the page was dirty when the event fired.
        latency_ns: modelled cost charged for this transition.
        tenant: issuing tenant's name in served runs (None solo).
        detail: free-form annotation (e.g. the actual class a RESOLVE
            event established).
    """

    seq: int
    access: int
    ts_ns: float
    page: int
    kind: LifecycleKind
    tier_from: str = "-"
    tier_to: str = "-"
    cause: str = ""
    predicted: str | None = None
    dirty: bool = False
    latency_ns: float = 0.0
    tenant: str | None = None
    detail: str | None = None

    def to_dict(self) -> dict:
        """Flat JSON-ready rendering (JSONL export lane)."""
        return {
            "seq": self.seq,
            "access": self.access,
            "ts_ns": self.ts_ns,
            "page": self.page,
            "kind": self.kind.value,
            "tier_from": self.tier_from,
            "tier_to": self.tier_to,
            "cause": self.cause,
            "predicted": self.predicted,
            "dirty": self.dirty,
            "latency_ns": self.latency_ns,
            "tenant": self.tenant,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "LifecycleEvent":
        """Inverse of :meth:`to_dict` (JSONL load lane)."""
        return cls(
            seq=int(record["seq"]),
            access=int(record["access"]),
            ts_ns=float(record.get("ts_ns", 0.0)),
            page=int(record["page"]),
            kind=LifecycleKind(record["kind"]),
            tier_from=record.get("tier_from", "-"),
            tier_to=record.get("tier_to", "-"),
            cause=record.get("cause", ""),
            predicted=record.get("predicted"),
            dirty=bool(record.get("dirty", False)),
            latency_ns=float(record.get("latency_ns", 0.0)),
            tenant=record.get("tenant"),
            detail=record.get("detail"),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pred = f" predicted={self.predicted}" if self.predicted else ""
        why = f" ({self.cause})" if self.cause else ""
        return (
            f"[@{self.access:>8}] {self.kind.value:<9} page={self.page} "
            f"{self.tier_from}->{self.tier_to}{why}{pred}"
        )


class LifecycleRecorder:
    """Bounded drop-oldest ring of :class:`LifecycleEvent`.

    Args:
        capacity: keep only the most recent N events (None = unbounded;
            fine for tests and short runs, unwise for production replays).

    Attributes:
        clock: optional callable returning the current modelled ns (set
            at attach time; events read 0.0 without it).
        tenant_source: optional callable returning the issuing tenant's
            name (wired by :class:`~repro.serve.runtime.TenantAwareRuntime`).
    """

    #: The full ring wants *every* event in order — it cannot ride the
    #: vector engine's bulk hit path, so attaching one makes the runtime
    #: replay scalar (see :func:`repro.obs.batch.is_batch_capable`; the
    #: reservoir-sampled :class:`repro.obs.batch.SampledLifecycleRecorder`
    #: is the batch-capable alternative).
    batch_capable = False

    def __init__(self, capacity: int | None = 100_000) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigError(f"capacity must be positive or None: {capacity}")
        self.capacity = capacity
        self._events: deque[LifecycleEvent] = deque(maxlen=capacity)
        self._emitted = 0
        self.clock: Callable[[], float] | None = None
        self.tenant_source: Callable[[], str | None] | None = None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LifecycleEvent]:
        return iter(self._events)

    @property
    def emitted(self) -> int:
        """Total events ever recorded (including since-dropped ones)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events lost to the capacity bound."""
        return self._emitted - len(self._events)

    def emit(
        self,
        kind: LifecycleKind,
        page: int,
        access: int,
        tier_from: str = "-",
        tier_to: str = "-",
        cause: str = "",
        predicted: str | None = None,
        dirty: bool = False,
        latency_ns: float = 0.0,
        detail: str | None = None,
    ) -> LifecycleEvent:
        """Record one transition; returns the event."""
        event = LifecycleEvent(
            seq=self._emitted,
            access=access,
            ts_ns=self.clock() if self.clock is not None else 0.0,
            page=page,
            kind=kind,
            tier_from=tier_from,
            tier_to=tier_to,
            cause=cause,
            predicted=predicted,
            dirty=dirty,
            latency_ns=latency_ns,
            tenant=self.tenant_source() if self.tenant_source is not None else None,
            detail=detail,
        )
        self._events.append(event)
        self._emitted += 1
        return event

    def events(
        self,
        page: int | None = None,
        kind: LifecycleKind | None = None,
        tenant: str | None = None,
    ) -> list[LifecycleEvent]:
        """Filtered snapshot (all filters optional)."""
        return [
            e
            for e in self._events
            if (page is None or e.page == page)
            and (kind is None or e.kind is kind)
            and (tenant is None or e.tenant == tenant)
        ]

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self._events]

    def clear(self) -> None:
        self._events.clear()
        self._emitted = 0


# ----------------------------------------------------------------------
# Query / diagnosis engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MispredictionCost:
    """SSD I/O a page's mispredicted placement decisions caused.

    A *misprediction charge* is one bypass (or Tier-2 eviction after a
    demotion) that the page's subsequent re-fault proved wrong: the page
    was pushed past host memory, then came back through the SSD up-path.
    """

    page: int
    refaults: int
    writebacks: int
    #: The predicted classes behind the charged decisions (histogram).
    predicted: dict
    ssd_page_ios: int

    def ssd_bytes(self, page_size: int) -> int:
        return self.ssd_page_ios * page_size


class LifecycleQuery:
    """Causal queries over a recorded (or loaded) lifecycle event stream.

    Works on any iterable of :class:`LifecycleEvent` — a live
    :class:`LifecycleRecorder` or events loaded back from a JSONL export
    — and never mutates it.
    """

    def __init__(self, events: Iterable[LifecycleEvent]) -> None:
        self._events = list(events)
        self._by_page: dict[int, list[LifecycleEvent]] = {}
        for event in self._events:
            self._by_page.setdefault(event.page, []).append(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def pages(self) -> list[int]:
        return sorted(self._by_page)

    # -- page journeys --------------------------------------------------
    def journey(self, page: int) -> list[LifecycleEvent]:
        """The page's recorded lifetime, in emission order."""
        return list(self._by_page.get(page, []))

    def explain_page(self, page: int) -> str:
        """Human-readable journey with per-hop causes."""
        events = self.journey(page)
        if not events:
            return f"page {page}: no recorded lifecycle events (never faulted, or rotated out of the ring)"
        lines = [f"page {page}: {len(events)} recorded events"]
        for event in events:
            lines.append("  " + _describe(event))
        ssd_ios = sum(
            1
            for e in events
            if e.kind is LifecycleKind.ADMIT or e.kind is LifecycleKind.WRITEBACK
        )
        lines.append(f"  total SSD page I/Os attributed to this page: {ssd_ios}")
        return "\n".join(lines)

    # -- miss diagnosis --------------------------------------------------
    def fill_at(self, access: int) -> LifecycleEvent | None:
        """The Tier-1 fill event stamped with ``access`` (None if that
        access was a hit, unrecorded, or rotated out of the ring)."""
        for event in self._events:
            if event.access == access and event.kind in FILL_KINDS:
                return event
        return None

    def nearest_fill(self, access: int) -> LifecycleEvent | None:
        """The recorded fill whose access index is closest to ``access``."""
        fills = [e for e in self._events if e.kind in FILL_KINDS]
        if not fills:
            return None
        return min(fills, key=lambda e: abs(e.access - access))

    def explain_miss(self, access: int) -> str | None:
        """Why the demand access at position ``access`` missed Tier-1.

        Returns None when no fill event carries that access index.
        """
        fill = self.fill_at(access)
        if fill is None:
            return None
        page = fill.page
        lines = [
            f"access {access}: page {page} missed Tier-1 and was "
            f"{'promoted from Tier-2 (PCIe fetch)' if fill.kind is LifecycleKind.PROMOTE else 'read from the SSD up-path'}"
            f" [{fill.latency_ns:.0f} ns]"
        ]
        prior = [e for e in self.journey(page) if e.seq < fill.seq]
        exit_event = next(
            (e for e in reversed(prior) if e.kind in EXIT_KINDS or e.kind is LifecycleKind.T2_EVICT),
            None,
        )
        if exit_event is None:
            lines.append(
                "  cause: cold miss — no prior Tier-1 residency on record"
                + ("" if not prior else " (earlier events were informational)")
            )
        else:
            lines.append("  last departure: " + _describe(exit_event))
            distance = access - exit_event.access
            if exit_event.kind is LifecycleKind.BYPASS:
                if fill.kind is LifecycleKind.ADMIT:
                    verdict = (
                        f"the bypass was mispredicted — reuse arrived {distance} accesses "
                        f"later and cost a full 3-tier SSD fault"
                        if exit_event.predicted
                        else f"the bypass sent it to the SSD; reuse arrived {distance} accesses later"
                    )
                else:  # pragma: no cover - bypassed pages come back via SSD
                    verdict = "bypassed, yet found in Tier-2"
                lines.append(f"  verdict: {verdict}")
            elif exit_event.kind is LifecycleKind.DEMOTE:
                if fill.kind is LifecycleKind.PROMOTE:
                    lines.append(
                        f"  verdict: the Tier-2 placement paid off — reuse arrived "
                        f"{distance} accesses later and was served from host memory"
                    )
                else:
                    lines.append(
                        "  verdict: placed in Tier-2 but evicted before reuse — "
                        "capacity pressure, not a policy misprediction"
                    )
            elif exit_event.kind is LifecycleKind.T2_EVICT:
                lines.append(
                    f"  verdict: Tier-2 FIFO pressure evicted it {distance} accesses "
                    f"before reuse; the original demotion decision was sound"
                )
        if fill.tenant is not None:
            lines.append(f"  tenant: {fill.tenant}")
        return "\n".join(lines)

    # -- misprediction costs ---------------------------------------------
    def misprediction_costs(self) -> list[MispredictionCost]:
        """Per-page SSD I/O charged to wrong placement decisions.

        A bypass followed by a re-admit from the SSD charges the page one
        re-read (plus one writeback if the bypassed copy was dirty).
        Sorted by total charged SSD page I/Os, descending.
        """
        costs: list[MispredictionCost] = []
        for page, events in self._by_page.items():
            refaults = 0
            writebacks = 0
            predicted: dict = {}
            pending: LifecycleEvent | None = None
            for event in events:
                if event.kind is LifecycleKind.BYPASS:
                    pending = event
                elif event.kind is LifecycleKind.DEMOTE:
                    pending = None
                elif event.kind is LifecycleKind.ADMIT and pending is not None:
                    refaults += 1
                    if pending.dirty:
                        writebacks += 1
                    key = pending.predicted or "unpredicted"
                    predicted[key] = predicted.get(key, 0) + 1
                    pending = None
                elif event.kind is LifecycleKind.PROMOTE:
                    pending = None
            if refaults:
                costs.append(
                    MispredictionCost(
                        page=page,
                        refaults=refaults,
                        writebacks=writebacks,
                        predicted=predicted,
                        ssd_page_ios=refaults + writebacks,
                    )
                )
        costs.sort(key=lambda c: (-c.ssd_page_ios, c.page))
        return costs

    def top_misprediction_costs(self, k: int = 10) -> list[MispredictionCost]:
        """The ``k`` pages whose wrong placements cost the most SSD I/O."""
        return self.misprediction_costs()[:k]

    # -- residency -------------------------------------------------------
    def residency(self) -> dict[str, list[int]]:
        """Per-tier residency durations, in coalesced-access units.

        Each completed stay — entry event to exit event — contributes one
        duration to its tier's list.  Open stays (still resident at the
        end of the record) are not counted.
        """
        durations: dict[str, list[int]] = {"T1": [], "T2": []}
        for events in self._by_page.values():
            entered: dict[str, int] = {}
            for event in events:
                if event.kind is LifecycleKind.RESOLVE:
                    continue
                if event.tier_from in entered:
                    durations[event.tier_from].append(
                        event.access - entered.pop(event.tier_from)
                    )
                if event.tier_to in durations:
                    entered[event.tier_to] = event.access
        return durations

    def residency_summary(self) -> dict[str, dict[str, float]]:
        """count/mean/p50/max per tier over :meth:`residency`."""
        out: dict[str, dict[str, float]] = {}
        for tier, values in self.residency().items():
            if not values:
                out[tier] = {"count": 0, "mean": 0.0, "p50": 0.0, "max": 0.0}
                continue
            ordered = sorted(values)
            out[tier] = {
                "count": len(ordered),
                "mean": sum(ordered) / len(ordered),
                "p50": float(ordered[len(ordered) // 2]),
                "max": float(ordered[-1]),
            }
        return out

    # -- prediction accounting -------------------------------------------
    def prediction_outcomes(self) -> dict[str, int]:
        """RESOLVE-event tally: ``{"correct": n, "mispredicted": m, ...}``."""
        tally: dict[str, int] = {}
        for event in self._events:
            if event.kind is LifecycleKind.RESOLVE:
                tally[event.cause] = tally.get(event.cause, 0) + 1
        return tally


def _describe(event: LifecycleEvent) -> str:
    """One-line human rendering of an event with its cause chain."""
    kind = event.kind
    where = (
        f"{event.tier_from}->{event.tier_to}"
        if event.tier_from != "-" or event.tier_to != "-"
        else ""
    )
    bits = [f"@{event.access}", kind.value]
    if where:
        bits.append(where)
    if event.cause:
        bits.append(f"cause={event.cause}")
    if event.predicted:
        bits.append(f"predicted={event.predicted}")
    if event.detail:
        bits.append(f"actual={event.detail}" if kind is LifecycleKind.RESOLVE else event.detail)
    if event.dirty:
        bits.append("dirty")
    if event.latency_ns:
        bits.append(f"{event.latency_ns:.0f} ns")
    if event.tenant is not None:
        bits.append(f"tenant={event.tenant}")
    return " ".join(bits)


def render_journey(events: Iterable[LifecycleEvent]) -> str:
    """Multi-line rendering of a journey (CLI/debug helper)."""
    return "\n".join(_describe(e) for e in events)


# ----------------------------------------------------------------------
# Export / load lanes
# ----------------------------------------------------------------------
def write_lifecycle_jsonl(
    path: str, events: Iterable[LifecycleEvent], extra: dict | None = None
) -> int:
    """One JSON object per event (``extra`` keys merged into each line);
    returns the record count."""
    from repro.obs.export import write_jsonl

    records = (
        {**e.to_dict(), **extra} if extra else e.to_dict() for e in events
    )
    return write_jsonl(path, records)


def load_lifecycle_jsonl(path: str) -> list[LifecycleEvent]:
    """Load events written by :func:`write_lifecycle_jsonl`."""
    import json

    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(LifecycleEvent.from_dict(json.loads(line)))
    return events


def lifecycle_trace_events(
    events: Iterable[LifecycleEvent], pid: int = 0
) -> list[dict]:
    """Chrome Trace Event instants — one lane per lifecycle kind.

    Merge these into :func:`repro.obs.export.chrome_trace_events` output
    (they use the same ``ts`` microsecond axis) to see admits, demotes,
    bypasses and writebacks as rows of ticks under the span lanes.
    """
    out: list[dict] = []
    tids: dict[str, int] = {}
    for event in sorted(events, key=lambda e: e.ts_ns):
        lane = event.kind.value if event.tenant is None else f"{event.kind.value} [{event.tenant}]"
        tid = tids.get(lane)
        if tid is None:
            tid = len(tids)
            tids[lane] = tid
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"lifecycle/{lane}"},
                }
            )
        record = {
            "name": event.kind.value,
            "cat": "lifecycle",
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": tid,
            "ts": event.ts_ns / 1000.0,
            "args": {
                "page": event.page,
                "access": event.access,
                "cause": event.cause,
            },
        }
        if event.predicted:
            record["args"]["predicted"] = event.predicted
        out.append(record)
    return out
