"""Command-line tools.

``gmt-sim``           — run one workload through one or more runtimes and
                        print the comparison (speedups, I/O, hit rates).
``gmt-characterize``  — instrumented analysis of a workload: reuse %,
                        Eq. 1 class fractions, miss-ratio-curve points.
``gmt-serve``         — serve a mix of tenant workloads over one shared
                        hierarchy (:mod:`repro.serve`): per-tenant
                        results, slowdown vs solo, fairness.
``gmt-why``           — causal diagnosis over the page-lifecycle flight
                        recorder (:mod:`repro.obs.lifecycle`): why an
                        access missed, a page's tier journey, the
                        costliest mispredictions, residency, anomalies.
``gmt-experiments``   — regenerate paper tables/figures
                        (:mod:`repro.experiments.runner`).
``gmt-bench``         — record / gate the perf baseline
                        (:mod:`repro.bench`).

All tools take ``--scale`` (byte-scale divisor vs the paper's platform)
and a Table 2 workload name.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.characterize import characterize_workload, collect_access_rds
from repro.analysis.compare import comparison_table
from repro.analysis.mrc import miss_ratio_curve
from repro.analysis.report import render_histogram, render_table
from repro.sim.platforms import PLATFORM_PRESETS, get_platform
from repro.core.config import DEFAULT_SCALE
from repro.experiments.harness import (
    RUNTIME_KINDS,
    RUNTIME_LABELS,
    build_runtime,
    default_config,
    get_workload,
)
from repro.reuse.classifier import ReuseClass
from repro.units import format_bytes
from repro.workloads.registry import WORKLOAD_NAMES


def _common_parser(prog: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "workload", choices=sorted(WORKLOAD_NAMES), help="Table 2 application"
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"byte-scale divisor vs the paper's platform (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--oversubscription",
        type=float,
        default=2.0,
        help="working set / (Tier-1 + Tier-2) capacity (default 2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    return parser


def _add_engine(parser: argparse.ArgumentParser) -> None:
    from repro.core.config import ENGINE_NAMES

    parser.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINE_NAMES),
        help="replay engine: 'scalar' (reference loop), 'vector' "
        "(byte-identical struct-of-arrays batch engine), or 'auto' "
        "(vector unless something genuinely per-access is attached — "
        "batch-capable telemetry such as windows, digests and anomaly "
        "scans stays on the vector engine). "
        "Default: the config's engine ('auto')",
    )


def _add_check_every(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check-every",
        type=int,
        metavar="N",
        default=None,
        help="run the conformance audit (structural invariants + stats "
        "identities, see gmt-check) every N coalesced accesses; a "
        "violation aborts the run",
    )


def _add_anomaly_flags(parser: argparse.ArgumentParser) -> None:
    """Anomaly-detector knobs shared by gmt-sim and gmt-serve."""
    parser.add_argument(
        "--anomaly-scan",
        action="store_true",
        help="scan windowed telemetry for thrash / bypass storms / "
        "latency spikes after the run (attaches telemetry if no "
        "other output asked for it)",
    )
    parser.add_argument(
        "--anomaly-window",
        type=int,
        metavar="N",
        default=2_000,
        help="snapshot window (coalesced accesses) for the anomaly scan "
        "(default 2000)",
    )
    parser.add_argument(
        "--anomaly-thrash",
        type=float,
        metavar="X",
        default=0.5,
        help="flag a window when Tier-1 evictions per access reach X "
        "(default 0.5)",
    )
    parser.add_argument(
        "--anomaly-bypass",
        type=float,
        metavar="X",
        default=0.75,
        help="flag a window when the Tier-2 bypass fraction of evictions "
        "reaches X (default 0.75)",
    )
    parser.add_argument(
        "--anomaly-spike",
        type=float,
        metavar="X",
        default=3.0,
        help="flag a window whose mean fault latency exceeds X times the "
        "trailing mean (default 3.0)",
    )


def _scan_anomalies(args, telemetry, label: str) -> list:
    """Run the anomaly detector with the CLI's thresholds; print findings."""
    from repro.obs import AnomalyDetector

    detector = AnomalyDetector(
        thrash_evictions_per_access=args.anomaly_thrash,
        bypass_fraction=args.anomaly_bypass,
        latency_spike_factor=args.anomaly_spike,
    )
    anomalies = detector.scan_and_annotate(telemetry)
    windows = len(telemetry.windows())
    if not anomalies:
        print(f"{label}: no anomalies over {windows} windows of "
              f"{args.anomaly_window} accesses")
    else:
        print(f"{label}: {len(anomalies)} anomalies over {windows} windows:")
        for anomaly in anomalies:
            print(f"  {anomaly}")
    return anomalies


def main_sim(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-sim``."""
    parser = _common_parser("gmt-sim", "Replay one workload through runtimes")
    parser.add_argument(
        "--runtimes",
        nargs="+",
        default=["bam", "reuse"],
        choices=list(RUNTIME_KINDS),
        help="runtimes to compare (default: bam reuse)",
    )
    parser.add_argument(
        "--platform",
        default="paper",
        choices=sorted(PLATFORM_PRESETS),
        help="hardware preset (default: the paper's Table 1 testbed)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a merged Chrome/Perfetto trace of all runtimes to PATH "
        "(open via ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a Prometheus text-format metrics snapshot of all "
        "runtimes to PATH",
    )
    parser.add_argument(
        "--lifecycle-out",
        metavar="PATH",
        default=None,
        help="record page-lifecycle events (flight recorder) and write "
        "them to PATH as JSONL (one file, 'kind' key tells runtimes "
        "apart; feed back via gmt-why --from)",
    )
    parser.add_argument(
        "--lifecycle-sample-rate",
        type=float,
        metavar="P",
        default=None,
        help="record the lifecycle stream for a deterministic hash-"
        "sampled fraction P of pages (0 < P <= 1) instead of the full "
        "flight recorder; sampled pages keep their complete journeys, "
        "and the sampled stream is batch-capable so --engine auto "
        "stays on the vector engine",
    )
    _add_engine(parser)
    _add_check_every(parser)
    _add_anomaly_flags(parser)
    args = parser.parse_args(argv)

    config = default_config(args.scale, platform=get_platform(args.platform))
    workload = get_workload(
        args.workload, config, oversubscription=args.oversubscription, seed=args.seed
    )
    lifecycle_on = (
        args.lifecycle_out is not None or args.lifecycle_sample_rate is not None
    )
    telemetry_on = (
        args.trace_out is not None
        or args.metrics_out is not None
        or lifecycle_on
        or args.anomaly_scan
    )
    full_lifecycle = lifecycle_on and args.lifecycle_sample_rate is None
    from repro.core.factory import resolve_engine_reason

    engine, engine_reason = resolve_engine_reason(
        args.engine,
        config,
        recorder=full_lifecycle,
        checks=args.check_every is not None,
        telemetry=telemetry_on,
    )
    telemetries = []
    results = {}
    resolution = (engine, engine_reason)
    for kind in args.runtimes:
        runtime = build_runtime(kind, config, engine=engine)
        runtime.engine_reason = engine_reason
        if args.check_every is not None:
            runtime.enable_periodic_checks(args.check_every)
        if telemetry_on:
            from repro.obs import Telemetry

            telemetries.append(
                runtime.attach_telemetry(
                    Telemetry(
                        lifecycle=full_lifecycle,
                        lifecycle_sample_rate=args.lifecycle_sample_rate,
                        window=args.anomaly_window if args.anomaly_scan else 10_000,
                    )
                )
            )
        results[RUNTIME_LABELS[kind]] = runtime.run(workload)
        # Live resolution: a vector runtime that had to fall back to its
        # scalar replay (per-access instrument attached after the fact)
        # reports that here, not the up-front choice.
        resolution = runtime.engine_resolution()
    print("engine={} (reason={})".format(*resolution))
    if args.anomaly_scan:
        for kind, telemetry in zip(args.runtimes, telemetries):
            _scan_anomalies(args, telemetry, RUNTIME_LABELS[kind])
    baseline = RUNTIME_LABELS["bam"] if "bam" in args.runtimes else None
    print(
        comparison_table(
            results,
            baseline=baseline,
            title=(
                f"{workload.name}: footprint {workload.footprint_pages} pages, "
                f"Tier-1 {config.tier1_frames} / Tier-2 {config.tier2_frames} frames, "
                f"platform '{args.platform}'"
            ),
        )
    )
    if args.trace_out is not None:
        from repro.obs.export import write_chrome_trace

        count = write_chrome_trace(
            args.trace_out,
            [(t.name, t.tracer) for t in telemetries],
            windows={t.name: t.windows() for t in telemetries},
            metadata={"engine": resolution[0], "engine_reason": resolution[1]},
        )
        print(f"wrote {count} trace events to {args.trace_out} (ui.perfetto.dev)")
    if args.metrics_out is not None:
        from repro.obs.export import write_prometheus

        write_prometheus(
            args.metrics_out,
            [t.registry for t in telemetries],
            header=["engine={} (reason={})".format(*resolution)],
        )
        print(f"wrote Prometheus snapshot to {args.metrics_out}")
    if args.lifecycle_out is not None:
        import json

        count = 0
        with open(args.lifecycle_out, "w", encoding="utf-8") as fh:
            for kind, telemetry in zip(args.runtimes, telemetries):
                if telemetry.lifecycle is None:
                    continue
                for event in telemetry.lifecycle.events():
                    fh.write(json.dumps({**event.to_dict(), "runtime": kind}) + "\n")
                    count += 1
        print(f"wrote {count} lifecycle events to {args.lifecycle_out}")
    return 0


def main_characterize(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-characterize``."""
    parser = _common_parser(
        "gmt-characterize", "Instrumented reuse analysis of one workload"
    )
    parser.add_argument(
        "--mrc-points",
        type=int,
        default=6,
        help="number of miss-ratio-curve capacities to report",
    )
    args = parser.parse_args(argv)

    config = default_config(args.scale)
    workload = get_workload(
        args.workload,
        config,
        oversubscription=args.oversubscription,
        seed=args.seed,
        jitter_warps=0,  # characterisation runs in program order
    )
    chars = characterize_workload(workload)
    rds = collect_access_rds(workload, config.tier1_frames, config.tier2_frames)
    fractions = rds.class_fractions()

    print(f"{workload.name}: {workload.description}")
    print(f"  footprint:           {chars.distinct_pages} pages")
    print(f"  coalesced accesses:  {chars.coalesced_accesses}")
    print(f"  page reuse:          {chars.reuse_percent:.2f}%")
    print(
        f"  total I/O demand:    "
        f"{format_bytes(chars.total_io_bytes(config.page_size))}"
    )
    print()
    print(
        render_histogram(
            ["short (fits Tier-1)", "medium (fits Tier-1+2)", "long (beyond)"],
            [
                fractions[ReuseClass.SHORT],
                fractions[ReuseClass.MEDIUM],
                fractions[ReuseClass.LONG],
            ],
            title="Eq. 1 class mix of reuses (Figure 7's bars)",
        )
    )

    mrc = miss_ratio_curve(workload)
    total = config.total_memory_frames
    capacities = [
        max(1, int(total * f))
        for f in [i / (args.mrc_points - 1) for i in range(1, args.mrc_points)]
    ]
    rows = [[c, mrc.miss_ratio(c)] for c in dict.fromkeys(capacities)]
    print()
    print(render_table(["capacity (pages)", "LRU miss ratio"], rows, title="Miss-ratio curve"))
    return 0


def _parse_tenants(spec: str) -> list:
    """Parse ``--tenants bfs,pagerank:2,hotspot`` into TenantSpecs.

    Each comma-separated entry is ``workload[:weight]``.
    """
    from repro.errors import ConfigError
    from repro.serve import TenantSpec

    specs = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, weight = entry.partition(":")
        try:
            specs.append(TenantSpec(name=name, workload=name, weight=float(weight) if weight else 1.0))
        except ValueError:
            raise ConfigError(f"bad tenant spec {entry!r}; want workload[:weight]") from None
    if not specs:
        raise ConfigError("--tenants needs at least one workload")
    return specs


def _serve_open_loop(args, config) -> int:
    """``gmt-serve --open-loop N``: the open-loop service simulator."""
    from repro.check.identities import assert_conformant, audit_split
    from repro.errors import ConformanceError
    from repro.serve import OpenLoopConfig, OpenLoopServer, TenantPopulation

    population = TenantPopulation(
        args.open_loop,
        seed=args.seed,
        workload=args.population_workload,
        slo_p50_ns=args.slo_p50,
        slo_p99_ns=args.slo_p99,
    )
    loop = OpenLoopConfig(
        requests=args.requests,
        arrival_process=args.arrival_process,
        arrival_rate_per_s=args.arrival_rate,
        epoch=args.epoch if args.epoch is not None else 8,
        seed=args.seed,
        max_backlog=args.max_backlog,
    )
    server = OpenLoopServer(config, population, loop)
    if args.check_every is not None:
        server.runtime.enable_periodic_checks(args.check_every)
    import time as _time

    wall_start = _time.perf_counter()
    outcome = server.run()
    wall_s = _time.perf_counter() - wall_start
    assert_conformant(server.runtime)
    violations = audit_split(server.runtime.stats, server.runtime.tenant_stats)
    if violations:
        raise ConformanceError(violations)
    print(outcome.to_table())
    engine, reason = server.engine_resolution()
    print(f"engine={engine} (reason={reason})")
    if not args.no_ledger:
        from repro.obs.ledger import record_run

        stats = server.runtime.stats
        record_run(
            "gmt-serve",
            wall_s=wall_s,
            engine=engine,
            params={
                "mode": "open-loop",
                "tenants": args.open_loop,
                "workload": args.population_workload,
                "arrival_process": args.arrival_process,
                "arrival_rate_per_s": args.arrival_rate,
                "requests": args.requests,
                "max_backlog": args.max_backlog,
                "epoch": loop.epoch,
                "scale": args.scale,
                "seed": args.seed,
            },
            accesses_per_sec=(
                stats.coalesced_accesses / wall_s if wall_s > 0 else 0.0
            ),
            metrics={
                "makespan_ns": outcome.makespan_ns,
                "requests_arrived": outcome.arrived,
                "requests_admitted": outcome.admitted,
                "requests_shed": outcome.shed,
                "requests_completed": outcome.completed,
                "shed_rate": outcome.shed_rate,
                "pressure_findings": outcome.pressure_findings,
                **(
                    {"req_p99_ns": outcome.p99_ns}
                    if outcome.p99_ns is not None
                    else {}
                ),
            },
            anomalies=outcome.pressure_findings,
        )
    return 0


def main_serve(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-serve``."""
    from repro.core.config import POLICY_NAMES
    from repro.policyzoo import EVICTION_POLICY_NAMES, GovernorConfig, policy_summary
    from repro.serve import (
        ARRIVAL_PROCESS_NAMES,
        QUOTA_MODES,
        SCHEDULER_NAMES,
        QuotaConfig,
        TenantServer,
        build_tenants,
    )

    zoo_lines = "\n".join(
        f"  {name:<8} {summary}" for name, summary in policy_summary()
    )
    parser = argparse.ArgumentParser(
        prog="gmt-serve",
        description="Serve a mix of tenant workloads over one shared GMT hierarchy",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            f"placement policies: {', '.join(POLICY_NAMES)}\n"
            f"disciplines:        {', '.join(SCHEDULER_NAMES)}\n"
            f"quota modes:        {', '.join(QUOTA_MODES)}\n"
            f"eviction policies (--tier1-policy / --tier2-policy):\n{zoo_lines}"
        ),
    )
    parser.add_argument(
        "--tenants",
        default=None,
        metavar="W1[:WEIGHT],W2[:WEIGHT],...",
        help="comma-separated Table 2 workloads, optionally weighted "
        "(e.g. bfs,pagerank:2,hotspot); required unless --open-loop",
    )
    parser.add_argument(
        "--epoch",
        type=int,
        metavar="N",
        default=None,
        help="warps emitted per scheduling decision (closed-loop default "
        "1 = the historical per-warp interleave; open-loop default 8)",
    )
    openloop = parser.add_argument_group(
        "open-loop serving (Poisson/bursty arrivals + admission control)"
    )
    openloop.add_argument(
        "--open-loop",
        type=int,
        metavar="TENANTS",
        default=None,
        help="serve an open-loop zipf-skewed population of TENANTS "
        "synthetic tenants instead of a closed-loop --tenants mix",
    )
    openloop.add_argument(
        "--arrival-process",
        default="poisson",
        choices=list(ARRIVAL_PROCESS_NAMES),
        help="open-loop arrival process (default: poisson)",
    )
    openloop.add_argument(
        "--arrival-rate",
        type=float,
        metavar="REQ_PER_S",
        default=2000.0,
        help="aggregate arrival rate in requests per simulated second "
        "(default 2000)",
    )
    openloop.add_argument(
        "--requests",
        type=int,
        metavar="N",
        default=1024,
        help="total open-loop requests to simulate (default 1024)",
    )
    openloop.add_argument(
        "--max-backlog",
        type=int,
        metavar="N",
        default=None,
        help="shed arrivals once this many requests are queued "
        "(default: unbounded; pressure anomalies still shed)",
    )
    openloop.add_argument(
        "--population-workload",
        default="keyvalue",
        metavar="NAME",
        help="synthetic workload every population tenant runs "
        "(default: keyvalue)",
    )
    parser.add_argument(
        "--policy",
        default="reuse",
        choices=list(POLICY_NAMES),
        help="placement policy of the shared hierarchy (default: reuse)",
    )
    parser.add_argument(
        "--tier1-policy",
        default=None,
        choices=list(EVICTION_POLICY_NAMES),
        help="eviction policy for every tenant at Tier-1 (default: clock); "
        "any non-default choice gives each tenant its own instance",
    )
    parser.add_argument(
        "--tier2-policy",
        default=None,
        choices=list(EVICTION_POLICY_NAMES),
        help="eviction policy for every tenant at Tier-2 (default: the "
        "placement policy's historical order — clock or fifo)",
    )
    parser.add_argument(
        "--governor",
        action="store_true",
        help="rate-limit per-tenant tier migrations with a token bucket "
        "(TierBPF-style admission control)",
    )
    parser.add_argument(
        "--governor-rate",
        type=float,
        metavar="TOKENS",
        default=50.0,
        help="governor tokens granted per 1000 coalesced accesses "
        "(default 50)",
    )
    parser.add_argument(
        "--governor-burst",
        type=float,
        metavar="TOKENS",
        default=16.0,
        help="governor token-bucket burst capacity (default 16)",
    )
    parser.add_argument(
        "--governor-stall-ns",
        type=float,
        metavar="NS",
        default=25_000.0,
        help="modelled stall added to a throttled promotion (default 25000)",
    )
    parser.add_argument(
        "--discipline",
        default="round-robin",
        choices=list(SCHEDULER_NAMES),
        help="stream interleaving discipline (default: round-robin)",
    )
    parser.add_argument(
        "--quotas",
        default="none",
        choices=list(QUOTA_MODES),
        help="per-tenant tier frame quotas: none, static caps, or "
        "dynamic with idle reclaim (default: none)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"byte-scale divisor vs the paper's platform (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--oversubscription",
        type=float,
        default=2.0,
        help="aggregate working set / (Tier-1 + Tier-2) capacity (default 2)",
    )
    parser.add_argument(
        "--platform",
        default="paper",
        choices=sorted(PLATFORM_PRESETS),
        help="hardware preset (default: the paper's Table 1 testbed)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    parser.add_argument(
        "--no-solo",
        action="store_true",
        help="skip the solo baseline replays (no slowdown/fairness columns)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Perfetto trace with per-tenant lanes to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a Prometheus snapshot with tenant-labelled series to PATH",
    )
    parser.add_argument(
        "--slo-p50",
        type=float,
        metavar="NS",
        default=None,
        help="per-tenant p50 miss-latency SLO target in ns (applied to "
        "every tenant; violations are marked '!' in the table)",
    )
    parser.add_argument(
        "--slo-p99",
        type=float,
        metavar="NS",
        default=None,
        help="per-tenant p99 miss-latency SLO target in ns",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the run ledger "
        "(benchmarks/results/ledger.jsonl or $GMT_LEDGER_PATH)",
    )
    _add_engine(parser)
    _add_check_every(parser)
    _add_anomaly_flags(parser)
    args = parser.parse_args(argv)

    if args.open_loop is None and args.tenants is None:
        parser.error("--tenants is required (or use --open-loop TENANTS)")

    config = default_config(
        args.scale, platform=get_platform(args.platform), policy=args.policy
    )
    if args.open_loop is not None:
        return _serve_open_loop(args, config)
    specs = _parse_tenants(args.tenants)
    if args.slo_p50 is not None or args.slo_p99 is not None:
        from dataclasses import replace

        specs = [
            replace(spec, slo_p50_ns=args.slo_p50, slo_p99_ns=args.slo_p99)
            for spec in specs
        ]
    streams = build_tenants(
        specs,
        config,
        oversubscription=args.oversubscription,
        seed=args.seed,
    )
    governor = None
    if args.governor:
        governor = GovernorConfig(
            tokens_per_1k_accesses=args.governor_rate,
            burst=args.governor_burst,
            promotion_stall_ns=args.governor_stall_ns,
        )
    server = TenantServer(
        config,
        streams,
        discipline=args.discipline,
        quota=QuotaConfig(mode=args.quotas),
        tier1_policy=args.tier1_policy,
        tier2_policy=args.tier2_policy,
        governor=governor,
        engine=args.engine,
        epoch=args.epoch if args.epoch is not None else 1,
    )
    if args.check_every is not None:
        server.runtime.enable_periodic_checks(args.check_every)
    telemetry = None
    if args.trace_out is not None or args.metrics_out is not None or args.anomaly_scan:
        from repro.obs import Telemetry

        telemetry = server.attach_telemetry(
            Telemetry(window=args.anomaly_window if args.anomaly_scan else 10_000)
        )
    import time as _time

    wall_start = _time.perf_counter()
    outcome = server.run(solo_baselines=not args.no_solo)
    wall_s = _time.perf_counter() - wall_start
    if args.check_every is not None:
        # Post-run: the full audit plus tenant-slice conservation.
        from repro.check.identities import audit_split, ConformanceError

        violations = audit_split(server.runtime.stats, server.runtime.tenant_stats)
        if violations:
            raise ConformanceError(violations)
    print(outcome.to_table())
    shared_engine, shared_reason = server.engine_resolution()
    print(f"engine={shared_engine} (reason={shared_reason})")
    if server.solo_resolutions:
        solo_engine, solo_reason = server.solo_resolutions[
            min(server.solo_resolutions)
        ]
        print(f"solo baselines: engine={solo_engine} (reason={solo_reason})")

    if args.trace_out is not None:
        from repro.obs.export import write_chrome_trace

        count = write_chrome_trace(
            args.trace_out,
            {telemetry.name: telemetry.tracer},
            windows={telemetry.name: telemetry.windows()},
            metadata={"engine": shared_engine, "engine_reason": shared_reason},
        )
        print(f"wrote {count} trace events to {args.trace_out} (ui.perfetto.dev)")
    if args.metrics_out is not None:
        from repro.obs.export import write_prometheus

        write_prometheus(
            args.metrics_out,
            [telemetry.registry] + server.tenant_registries(),
            header=[f"engine={shared_engine} (reason={shared_reason})"],
        )
        print(f"wrote Prometheus snapshot to {args.metrics_out}")
    anomalies = []
    if args.anomaly_scan:
        anomalies = _scan_anomalies(args, telemetry, "serve")
    if not args.no_ledger:
        from repro.obs.ledger import record_run

        stats = server.runtime.stats
        slowdowns = outcome.slowdowns()
        solo_engines = sorted(
            {eng for eng, _ in server.solo_resolutions.values()}
        )
        record_run(
            "gmt-serve",
            wall_s=wall_s,
            engine=shared_engine,
            params={
                "engine_reason": shared_reason,
                **(
                    {"solo_engines": solo_engines} if solo_engines else {}
                ),
                "tenants": sorted(s.workload for s in specs),
                "discipline": args.discipline,
                "epoch": args.epoch if args.epoch is not None else 1,
                "quotas": args.quotas,
                "policy": args.policy,
                "tier1_policy": args.tier1_policy or "clock",
                "tier2_policy": args.tier2_policy or "default",
                "governor": bool(args.governor),
                "scale": args.scale,
                "seed": args.seed,
            },
            accesses_per_sec=(
                stats.coalesced_accesses / wall_s if wall_s > 0 else 0.0
            ),
            metrics={
                "makespan_ns": outcome.elapsed_ns,
                "t1_hit_rate": stats.t1_hit_rate,
                "migration_throttled": stats.migration_throttled,
                "tenants": len(outcome.tenants),
                "slo_violations": sum(
                    len(t.slo_violations) for t in outcome.tenants
                ),
                **({"max_slowdown": max(slowdowns)} if slowdowns else {}),
            },
            anomalies=len(anomalies),
        )
    return 0


def main_why(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-why`` — causal lifecycle diagnosis.

    Replays the workload with the flight recorder enabled (deterministic,
    so the answers are reproducible), then runs one query::

        gmt-why hotspot page 713         # page 713's full tier journey
        gmt-why hotspot miss 2197        # why did access 2197 miss?
        gmt-why hotspot top --k 5        # costliest mispredictions
        gmt-why hotspot residency        # per-tier residency distribution
        gmt-why hotspot outcomes         # predicted-vs-actual tally
        gmt-why hotspot anomalies        # thrash/bypass/latency windows

    ``--from FILE`` answers from a previously exported JSONL (see
    ``gmt-sim --lifecycle-out`` / ``--record-out``) instead of replaying.
    """
    parser = _common_parser(
        "gmt-why", "Causal queries over the page-lifecycle flight recorder"
    )
    parser.add_argument(
        "query",
        choices=["page", "miss", "top", "residency", "outcomes", "anomalies"],
        help="what to explain",
    )
    parser.add_argument(
        "arg",
        nargs="?",
        type=int,
        default=None,
        help="page id (for 'page') or access index (for 'miss')",
    )
    from repro.core.config import POLICY_NAMES

    parser.add_argument(
        "--runtime",
        default="reuse",
        # GMT policy variants only: the intersection of the runtime
        # registry and the placement-policy registry (baselines such as
        # bam/hmm/dragon do not drive the 3-tier lifecycle recorder).
        choices=[k for k in RUNTIME_KINDS if k in POLICY_NAMES],
        help="GMT policy variant to replay (default: reuse)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=200_000,
        help="flight-recorder ring capacity (default 200000)",
    )
    parser.add_argument(
        "--lifecycle-sample-rate",
        type=float,
        metavar="P",
        default=None,
        help="record a deterministic hash-sampled fraction P of pages "
        "(0 < P <= 1) instead of every page; sampled pages keep their "
        "complete journeys, and the replay stays on the vector engine "
        "(queries about unsampled pages come back empty)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=2_000,
        help="snapshot window (accesses) for the anomaly scan (default 2000)",
    )
    parser.add_argument(
        "--k", type=int, default=10, help="rows for the 'top' query (default 10)"
    )
    parser.add_argument(
        "--from",
        dest="from_file",
        metavar="FILE",
        default=None,
        help="answer from an exported lifecycle JSONL instead of replaying",
    )
    parser.add_argument(
        "--record-out",
        metavar="PATH",
        default=None,
        help="also export the recorded lifecycle events to PATH as JSONL",
    )
    args = parser.parse_args(argv)

    if args.query in ("page", "miss") and args.arg is None:
        parser.error(f"'{args.query}' needs an argument (gmt-why W {args.query} <n>)")
    if args.from_file is not None and args.query == "anomalies":
        parser.error("'anomalies' scans snapshot windows and needs a live replay")

    from repro.obs import LifecycleQuery
    from repro.obs.lifecycle import load_lifecycle_jsonl, write_lifecycle_jsonl

    windows: list[dict] = []
    page_size = default_config(args.scale).page_size
    if args.from_file is not None:
        events = load_lifecycle_jsonl(args.from_file)
    else:
        from repro.obs import Telemetry

        config = default_config(args.scale)
        workload = get_workload(
            args.workload,
            config,
            oversubscription=args.oversubscription,
            seed=args.seed,
        )
        runtime = build_runtime(args.runtime, config)
        telemetry = Telemetry(
            window=args.window,
            lifecycle=args.capacity,
            lifecycle_sample_rate=args.lifecycle_sample_rate,
        )
        runtime.attach_telemetry(telemetry)
        runtime.run(workload)
        print("engine={} (reason={})".format(*runtime.engine_resolution()))
        events = telemetry.lifecycle.events()
        windows = telemetry.windows()
        if telemetry.lifecycle.dropped:
            print(
                f"note: ring dropped {telemetry.lifecycle.dropped} oldest events "
                f"(capacity {args.capacity}; raise --capacity for full history)"
            )
        if args.record_out is not None:
            count = write_lifecycle_jsonl(args.record_out, events)
            print(f"wrote {count} lifecycle events to {args.record_out}")

    query = LifecycleQuery(events)
    if args.query == "page":
        print(query.explain_page(args.arg))
    elif args.query == "miss":
        answer = query.explain_miss(args.arg)
        if answer is None:
            nearest = query.nearest_fill(args.arg)
            hint = (
                f"; nearest recorded fill is at access {nearest.access} (page {nearest.page})"
                if nearest is not None
                else ""
            )
            print(f"access {args.arg}: no recorded Tier-1 fill — it hit, or rotated out of the ring{hint}")
        else:
            print(answer)
    elif args.query == "top":
        costs = query.top_misprediction_costs(args.k)
        if not costs:
            print("no misprediction charges on record (no bypass-then-refault page)")
        else:
            rows = [
                [
                    c.page,
                    c.refaults,
                    c.writebacks,
                    format_bytes(c.ssd_bytes(page_size)),
                    ",".join(f"{k}:{v}" for k, v in sorted(c.predicted.items())),
                ]
                for c in costs
            ]
            print(
                render_table(
                    ["page", "refaults", "writebacks", "SSD I/O", "predicted"],
                    rows,
                    title=f"top {len(rows)} pages by misprediction-charged SSD I/O",
                )
            )
    elif args.query == "residency":
        rows = [
            [tier, s["count"], f"{s['mean']:.1f}", f"{s['p50']:.0f}", f"{s['max']:.0f}"]
            for tier, s in sorted(query.residency_summary().items())
        ]
        print(
            render_table(
                ["tier", "stays", "mean", "p50", "max"],
                rows,
                title="per-tier residency (completed stays, coalesced-access units)",
            )
        )
    elif args.query == "outcomes":
        tally = query.prediction_outcomes()
        if not tally:
            print("no RESOLVE events on record (policy without prediction resolution?)")
        else:
            total = sum(tally.values())
            rows = [
                [cause, count, f"{count / total:.1%}"]
                for cause, count in sorted(tally.items(), key=lambda kv: -kv[1])
            ]
            print(render_table(["outcome", "count", "share"], rows,
                               title="placement-prediction outcomes (RESOLVE events)"))
    elif args.query == "anomalies":
        from repro.obs import AnomalyDetector

        anomalies = AnomalyDetector().scan(windows)
        if not anomalies:
            print(f"no anomalies over {len(windows)} windows of {args.window} accesses")
        else:
            for anomaly in anomalies:
                print(
                    f"[window {anomaly.window} @access {anomaly.position}] "
                    f"{anomaly.rule}: {anomaly.message}"
                )
    return 0


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main_sim())
