"""Command-line tools.

``gmt-sim``           — run one workload through one or more runtimes and
                        print the comparison (speedups, I/O, hit rates).
``gmt-characterize``  — instrumented analysis of a workload: reuse %,
                        Eq. 1 class fractions, miss-ratio-curve points.
``gmt-serve``         — serve a mix of tenant workloads over one shared
                        hierarchy (:mod:`repro.serve`): per-tenant
                        results, slowdown vs solo, fairness.
``gmt-experiments``   — regenerate paper tables/figures
                        (:mod:`repro.experiments.runner`).

All tools take ``--scale`` (byte-scale divisor vs the paper's platform)
and a Table 2 workload name.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.characterize import characterize_workload, collect_access_rds
from repro.analysis.compare import comparison_table
from repro.analysis.mrc import miss_ratio_curve
from repro.analysis.report import render_histogram, render_table
from repro.sim.platforms import PLATFORM_PRESETS, get_platform
from repro.core.config import DEFAULT_SCALE
from repro.experiments.harness import (
    RUNTIME_KINDS,
    RUNTIME_LABELS,
    build_runtime,
    default_config,
    get_workload,
)
from repro.reuse.classifier import ReuseClass
from repro.units import format_bytes
from repro.workloads.registry import WORKLOAD_NAMES


def _common_parser(prog: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "workload", choices=sorted(WORKLOAD_NAMES), help="Table 2 application"
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"byte-scale divisor vs the paper's platform (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--oversubscription",
        type=float,
        default=2.0,
        help="working set / (Tier-1 + Tier-2) capacity (default 2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    return parser


def main_sim(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-sim``."""
    parser = _common_parser("gmt-sim", "Replay one workload through runtimes")
    parser.add_argument(
        "--runtimes",
        nargs="+",
        default=["bam", "reuse"],
        choices=list(RUNTIME_KINDS),
        help="runtimes to compare (default: bam reuse)",
    )
    parser.add_argument(
        "--platform",
        default="paper",
        choices=sorted(PLATFORM_PRESETS),
        help="hardware preset (default: the paper's Table 1 testbed)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a merged Chrome/Perfetto trace of all runtimes to PATH "
        "(open via ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a Prometheus text-format metrics snapshot of all "
        "runtimes to PATH",
    )
    args = parser.parse_args(argv)

    config = default_config(args.scale, platform=get_platform(args.platform))
    workload = get_workload(
        args.workload, config, oversubscription=args.oversubscription, seed=args.seed
    )
    telemetry_on = args.trace_out is not None or args.metrics_out is not None
    telemetries = []
    results = {}
    for kind in args.runtimes:
        runtime = build_runtime(kind, config)
        if telemetry_on:
            telemetries.append(runtime.attach_telemetry())
        results[RUNTIME_LABELS[kind]] = runtime.run(workload)
    baseline = RUNTIME_LABELS["bam"] if "bam" in args.runtimes else None
    print(
        comparison_table(
            results,
            baseline=baseline,
            title=(
                f"{workload.name}: footprint {workload.footprint_pages} pages, "
                f"Tier-1 {config.tier1_frames} / Tier-2 {config.tier2_frames} frames, "
                f"platform '{args.platform}'"
            ),
        )
    )
    if args.trace_out is not None:
        from repro.obs.export import write_chrome_trace

        count = write_chrome_trace(
            args.trace_out, [(t.name, t.tracer) for t in telemetries]
        )
        print(f"wrote {count} trace events to {args.trace_out} (ui.perfetto.dev)")
    if args.metrics_out is not None:
        from repro.obs.export import write_prometheus

        write_prometheus(args.metrics_out, [t.registry for t in telemetries])
        print(f"wrote Prometheus snapshot to {args.metrics_out}")
    return 0


def main_characterize(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-characterize``."""
    parser = _common_parser(
        "gmt-characterize", "Instrumented reuse analysis of one workload"
    )
    parser.add_argument(
        "--mrc-points",
        type=int,
        default=6,
        help="number of miss-ratio-curve capacities to report",
    )
    args = parser.parse_args(argv)

    config = default_config(args.scale)
    workload = get_workload(
        args.workload,
        config,
        oversubscription=args.oversubscription,
        seed=args.seed,
        jitter_warps=0,  # characterisation runs in program order
    )
    chars = characterize_workload(workload)
    rds = collect_access_rds(workload, config.tier1_frames, config.tier2_frames)
    fractions = rds.class_fractions()

    print(f"{workload.name}: {workload.description}")
    print(f"  footprint:           {chars.distinct_pages} pages")
    print(f"  coalesced accesses:  {chars.coalesced_accesses}")
    print(f"  page reuse:          {chars.reuse_percent:.2f}%")
    print(
        f"  total I/O demand:    "
        f"{format_bytes(chars.total_io_bytes(config.page_size))}"
    )
    print()
    print(
        render_histogram(
            ["short (fits Tier-1)", "medium (fits Tier-1+2)", "long (beyond)"],
            [
                fractions[ReuseClass.SHORT],
                fractions[ReuseClass.MEDIUM],
                fractions[ReuseClass.LONG],
            ],
            title="Eq. 1 class mix of reuses (Figure 7's bars)",
        )
    )

    mrc = miss_ratio_curve(workload)
    total = config.total_memory_frames
    capacities = [
        max(1, int(total * f))
        for f in [i / (args.mrc_points - 1) for i in range(1, args.mrc_points)]
    ]
    rows = [[c, mrc.miss_ratio(c)] for c in dict.fromkeys(capacities)]
    print()
    print(render_table(["capacity (pages)", "LRU miss ratio"], rows, title="Miss-ratio curve"))
    return 0


def _parse_tenants(spec: str) -> list:
    """Parse ``--tenants bfs,pagerank:2,hotspot`` into TenantSpecs.

    Each comma-separated entry is ``workload[:weight]``.
    """
    from repro.errors import ConfigError
    from repro.serve import TenantSpec

    specs = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, weight = entry.partition(":")
        try:
            specs.append(TenantSpec(name=name, workload=name, weight=float(weight) if weight else 1.0))
        except ValueError:
            raise ConfigError(f"bad tenant spec {entry!r}; want workload[:weight]") from None
    if not specs:
        raise ConfigError("--tenants needs at least one workload")
    return specs


def main_serve(argv: list[str] | None = None) -> int:
    """Entry point for ``gmt-serve``."""
    from repro.serve import QUOTA_MODES, SCHEDULER_NAMES, QuotaConfig, TenantServer, build_tenants

    parser = argparse.ArgumentParser(
        prog="gmt-serve",
        description="Serve a mix of tenant workloads over one shared GMT hierarchy",
    )
    parser.add_argument(
        "--tenants",
        required=True,
        metavar="W1[:WEIGHT],W2[:WEIGHT],...",
        help="comma-separated Table 2 workloads, optionally weighted "
        "(e.g. bfs,pagerank:2,hotspot)",
    )
    parser.add_argument(
        "--policy",
        default="reuse",
        choices=["tier-order", "random", "reuse", "dueling"],
        help="placement policy of the shared hierarchy (default: reuse)",
    )
    parser.add_argument(
        "--discipline",
        default="round-robin",
        choices=list(SCHEDULER_NAMES),
        help="stream interleaving discipline (default: round-robin)",
    )
    parser.add_argument(
        "--quotas",
        default="none",
        choices=list(QUOTA_MODES),
        help="per-tenant tier frame quotas: none, static caps, or "
        "dynamic with idle reclaim (default: none)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"byte-scale divisor vs the paper's platform (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--oversubscription",
        type=float,
        default=2.0,
        help="aggregate working set / (Tier-1 + Tier-2) capacity (default 2)",
    )
    parser.add_argument(
        "--platform",
        default="paper",
        choices=sorted(PLATFORM_PRESETS),
        help="hardware preset (default: the paper's Table 1 testbed)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    parser.add_argument(
        "--no-solo",
        action="store_true",
        help="skip the solo baseline replays (no slowdown/fairness columns)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Perfetto trace with per-tenant lanes to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a Prometheus snapshot with tenant-labelled series to PATH",
    )
    args = parser.parse_args(argv)

    config = default_config(
        args.scale, platform=get_platform(args.platform), policy=args.policy
    )
    streams = build_tenants(
        _parse_tenants(args.tenants),
        config,
        oversubscription=args.oversubscription,
        seed=args.seed,
    )
    server = TenantServer(
        config,
        streams,
        discipline=args.discipline,
        quota=QuotaConfig(mode=args.quotas),
    )
    telemetry = None
    if args.trace_out is not None or args.metrics_out is not None:
        telemetry = server.attach_telemetry()
    outcome = server.run(solo_baselines=not args.no_solo)
    print(outcome.to_table())

    if args.trace_out is not None:
        from repro.obs.export import write_chrome_trace

        count = write_chrome_trace(args.trace_out, {telemetry.name: telemetry.tracer})
        print(f"wrote {count} trace events to {args.trace_out} (ui.perfetto.dev)")
    if args.metrics_out is not None:
        from repro.obs.export import write_prometheus

        write_prometheus(
            args.metrics_out, [telemetry.registry] + server.tenant_registries()
        )
        print(f"wrote Prometheus snapshot to {args.metrics_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main_sim())
