"""Dragon: mmap-style CPU-orchestrated 3-tier paging (Markthub+ SC'18).

Dragon [31] predates HMM: it extends UVM to NVM/SSD through the host's
``mmap`` machinery, servicing every GPU fault in a user-level + driver
path on the CPU.  The paper does not re-measure it ("Prior work has
compared BaM with [31], and shown that the GPU-orchestrated
throughput-optimized BaM is a much better alternative"), but it anchors
the CPU-orchestration end of Figure 1, so the reproduction includes it for
completeness.

Relative to HMM, Dragon's orchestration is strictly heavier:

- every fault crosses a user-level handler in addition to the driver
  (higher per-fault software cost);
- the fault path is effectively serialized on fewer host contexts;
- data moves through mmap'd 4 KiB pages with less readahead benefit than
  the page cache gives HMM.

The class constants encode those deltas; the tier/residency logic is the
same strict-demotion hierarchy as :class:`~repro.baselines.hmm.HmmRuntime`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.hmm import HmmRuntime
from repro.core.config import GMTConfig
from repro.sim.cost import CostModel
from repro.sim.nvme import NvmeSSD
from repro.units import GiB, USEC


class DragonRuntime(HmmRuntime):
    """CPU-orchestrated 3-tier runtime modelling Dragon's mmap path."""

    obs_extra_labels = {"baseline": "dragon", "mechanism": "mmap"}

    #: Per-fault software cost: driver + user-level handler round trip.
    FAULT_OVERHEAD_NS = 100.0 * USEC
    #: Concurrent faults the mmap path sustains.
    FAULT_CONCURRENCY = 4
    #: Effective SSD bandwidth through 4 KiB mmap faults.
    MMAP_SSD_BANDWIDTH = 0.8 * GiB

    def __init__(self, config: GMTConfig) -> None:
        super().__init__(config)
        platform = config.platform
        self.cost = CostModel(fault_concurrency=self.FAULT_CONCURRENCY)
        self._extra_fault_ns = self.FAULT_OVERHEAD_NS
        self.ssd = NvmeSSD(
            read_latency_ns=platform.ssd_read_latency_ns,
            write_latency_ns=platform.ssd_write_latency_ns,
            read_bandwidth=self.MMAP_SSD_BANDWIDTH,
            write_bandwidth=self.MMAP_SSD_BANDWIDTH,
            queue_depth=self.FAULT_CONCURRENCY,
        )
        self.name = "Dragon"

    @classmethod
    def platform_for(cls, config: GMTConfig) -> GMTConfig:
        """Convenience: a config whose PlatformModel mirrors the Dragon
        constants (for code that reads costs from the platform)."""
        platform = replace(
            config.platform,
            host_fault_overhead_ns=cls.FAULT_OVERHEAD_NS,
            host_fault_concurrency=cls.FAULT_CONCURRENCY,
            host_pagecache_ssd_bandwidth=cls.MMAP_SSD_BANDWIDTH,
        )
        return replace(config, platform=platform)
