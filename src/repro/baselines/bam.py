"""BaM: GPU-initiated on-demand storage access, the 2-tier baseline.

BaM [40] moves pages directly between GPU memory and the SSD through
GPU-resident NVMe queues, "automatically bypass[ing] the host memory in
both the up/down paths" (paper section 2).  Mechanically it is GMT with
Tier-2 removed: same 64 KB pages, same clock replacement in GPU memory,
same clean-discard/dirty-writeback eviction, same GPU-side fault
parallelism — which is exactly how :class:`BamRuntime` is built, so every
difference measured against GMT is attributable to Tier-2 and its
placement policy, nothing else.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime


class BamRuntime(GMTRuntime):
    """2-tier (GPU memory <-> SSD) runtime; the paper's primary baseline.

    Constructed from any :class:`~repro.core.config.GMTConfig`: the Tier-2
    capacity is forced to zero and the placement policy to tier-order
    (with no Tier-2, every eviction degenerates to BaM's behaviour —
    discard clean pages, write dirty ones to the SSD).
    """

    obs_extra_labels = {"baseline": "bam"}

    def __init__(self, config: GMTConfig) -> None:
        bam_config = replace(config, tier2_frames=0, policy="tier-order")
        super().__init__(bam_config)
        self.name = "BaM"
