"""Baseline runtimes the paper compares GMT against (section 3.1, 3.6).

- :mod:`repro.baselines.bam` — BaM [40]: GPU-orchestrated **2-tier**
  (GPU memory <-> SSD) hierarchy; the state of the art GMT extends.
- :mod:`repro.baselines.hmm` — HMM [5]: **CPU-orchestrated 3-tier**
  hierarchy through the Linux paging system, plus the section 3.6
  "optimistic HMM" variant granted GMT-Reuse's hit rates.
"""

from repro.baselines.bam import BamRuntime
from repro.baselines.dragon import DragonRuntime
from repro.baselines.hmm import HmmRuntime, optimistic_hmm_breakdown

__all__ = ["BamRuntime", "DragonRuntime", "HmmRuntime", "optimistic_hmm_breakdown"]
