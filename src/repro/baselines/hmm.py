"""HMM: the CPU-orchestrated 3-tier baseline (paper sections 3.1, 3.6).

NVIDIA's Heterogeneous Memory Management extends UVM to SSD-backed data
through the host's paging system: every GPU page fault is serviced by host
software (driver + Linux page cache), and data moves under host control.
The paper's point (and BaM's [40] before it) is that this orchestration
"do[es] not scale when hundreds/thousands of GPU threads fault on their
pages and request those simultaneously".

:class:`HmmRuntime` therefore reuses the *same* 3-tier residency logic as
GMT-TierOrder (strict tier ordering is what an LRU-ish OS page cache
implements) but prices orchestration as the host does:

- fault-level parallelism limited to a few host cores
  (``platform.host_fault_concurrency``) instead of the GPU's hundreds;
- a host software cost on every fault (``platform.host_fault_overhead_ns``:
  interrupt, driver, page-cache lookup, page-table update, TLB shootdown);
- SSD access through the page cache at 4 KiB granularity with readahead
  waste (``platform.host_pagecache_ssd_bandwidth``), far below the raw
  device bandwidth BaM's GPU-resident NVMe queues sustain;
- Tier-1<->Tier-2 movement via host-programmed DMA (``cudaMemcpyAsync``
  is the only mechanism available — no GPU-thread zero-copy).

:func:`optimistic_hmm_breakdown` implements section 3.6's thought
experiment: give HMM GMT-Reuse's hit rates ("its I/O times are accordingly
lowered") and show GMT-Reuse still wins on orchestration alone.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import GMTConfig
from repro.core.runtime import GMTRuntime, RunResult
from repro.sim.cost import CostBreakdown, CostModel
from repro.sim.nvme import NvmeSSD
from repro.sim.transfer import DmaEngine
from repro.units import SEC


class HmmRuntime(GMTRuntime):
    """CPU-orchestrated 3-tier runtime modelling HMM-over-UVM."""

    orchestration = "host"
    obs_extra_labels = {"baseline": "hmm"}

    def __init__(self, config: GMTConfig) -> None:
        hmm_config = replace(config, policy="tier-order", transfer_engine="dma")
        super().__init__(hmm_config)
        platform = hmm_config.platform
        # Host-side orchestration: few handler cores, per-fault software cost.
        self.cost = CostModel(fault_concurrency=platform.host_fault_concurrency)
        self._extra_fault_ns = platform.host_fault_overhead_ns
        # SSD reached through the host page cache, not GPU NVMe queues.
        self.ssd = NvmeSSD(
            read_latency_ns=platform.ssd_read_latency_ns,
            write_latency_ns=platform.ssd_write_latency_ns,
            read_bandwidth=platform.host_pagecache_ssd_bandwidth,
            write_bandwidth=platform.host_pagecache_ssd_bandwidth,
            queue_depth=platform.host_fault_concurrency,
        )
        # Host-programmed DMA for Tier-1<->Tier-2; one descriptor per page.
        self.engine = DmaEngine()
        self._t2_move_ns = self.engine.transfer_time_ns(1, page_size=config.page_size)
        self.name = "HMM"


def optimistic_hmm_breakdown(
    gmt_reuse_result: RunResult, config: GMTConfig
) -> CostBreakdown:
    """Section 3.6's "optimistic" HMM: GMT-Reuse hit rates, HMM orchestration.

    Rebuilds the four bottleneck terms from GMT-Reuse's *counters* (same
    misses, same Tier-2 hits, same SSD I/O) but priced with the host's
    fault concurrency, per-fault overhead, DMA-only transfers, and
    page-cache SSD bandwidth.  The paper finds GMT-Reuse still beats this
    by ~90 % on average — the GPU-orchestration advantage isolated from
    the hit-rate advantage.
    """
    stats = gmt_reuse_result.stats
    platform = config.platform
    page = config.page_size
    dma = DmaEngine()
    t2_move_ns = dma.transfer_time_ns(1, page_size=page)

    fault_latency = stats.t1_misses * (
        platform.host_fault_overhead_ns + platform.tier2_lookup_ns
    )
    fault_latency += stats.t2_hits * (platform.host_fetch_latency_ns + t2_move_ns)
    fault_latency += stats.ssd_page_reads * platform.ssd_read_latency_ns
    fault_latency += stats.ssd_page_writes * platform.ssd_write_latency_ns
    fault_latency += stats.t2_placements * t2_move_ns

    compute_ns = stats.coalesced_accesses * platform.gpu_access_ns
    pcie_bytes = (stats.t2_fetches + stats.t2_placements) * page
    ssd_bytes = (stats.ssd_page_reads + stats.ssd_page_writes) * page

    return CostBreakdown(
        compute_ns=compute_ns,
        fault_ns=fault_latency / platform.host_fault_concurrency,
        pcie_ns=pcie_bytes / platform.pcie_bandwidth * SEC,
        ssd_ns=ssd_bytes / platform.host_pagecache_ssd_bandwidth * SEC,
    )
