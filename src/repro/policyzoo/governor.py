"""TierBPF-style migration admission control.

One token bucket per tenant meters tier *migrations* — Tier-1→Tier-2
demotions and Tier-2→Tier-1 promotions — against the interconnect.
Buckets refill on the runtime's logical clock (coalesced accesses), so
admission decisions are exactly reproducible under the replay engine:

- A **denied demotion** bypasses the host tier straight to Tier-3 (the
  page still leaves Tier-1 — exclusive tiering must make the frame
  available — but it stops consuming host cache and PCIe writeback
  bandwidth).  Counted as ``demotions_throttled``.
- A **denied promotion** cannot be refused outright (the faulting warp
  needs the page), so it pays a stall penalty instead, modelling
  queueing behind the throttle.  Counted as ``promotions_throttled``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class GovernorConfig:
    """Token-bucket parameters, shared by every tenant's bucket.

    Attributes:
        tokens_per_1k_accesses: bucket refill rate — migration tokens
            granted per 1000 coalesced accesses of runtime progress.
        burst: bucket capacity; bounds how many migrations a tenant can
            issue back-to-back after an idle stretch.
        promotion_stall_ns: latency penalty charged to a fault whose
            Tier-2 promotion found the bucket empty.
    """

    tokens_per_1k_accesses: float = 50.0
    burst: float = 16.0
    promotion_stall_ns: float = 25_000.0

    def __post_init__(self) -> None:
        if self.tokens_per_1k_accesses <= 0:
            raise ConfigError(
                f"tokens_per_1k_accesses must be > 0, got "
                f"{self.tokens_per_1k_accesses}"
            )
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")
        if self.promotion_stall_ns < 0:
            raise ConfigError(
                f"promotion_stall_ns must be >= 0, got "
                f"{self.promotion_stall_ns}"
            )


class MigrationGovernor:
    """Per-tenant token buckets on a shared logical clock."""

    def __init__(self, config: GovernorConfig, tenants: int) -> None:
        if tenants < 1:
            raise ConfigError(f"governor needs >= 1 tenant, got {tenants}")
        self.config = config
        self._tokens = [config.burst] * tenants
        self._last = [0] * tenants
        #: Admissions granted / denied per tenant (introspection only;
        #: the runtime's own stats carry the gated counters).
        self.granted = [0] * tenants
        self.denied = [0] * tenants

    def _refill(self, tenant: int, now: int) -> None:
        elapsed = now - self._last[tenant]
        if elapsed > 0:
            rate = self.config.tokens_per_1k_accesses / 1000.0
            self._tokens[tenant] = min(
                self.config.burst, self._tokens[tenant] + elapsed * rate
            )
        self._last[tenant] = now

    def tokens(self, tenant: int, now: int) -> float:
        """Current bucket level after refilling to ``now``."""
        self._refill(tenant, now)
        return self._tokens[tenant]

    def try_take(self, tenant: int, now: int) -> bool:
        """Spend one migration token; False when the bucket is empty."""
        self._refill(tenant, now)
        if self._tokens[tenant] >= 1.0:
            self._tokens[tenant] -= 1.0
            self.granted[tenant] += 1
            return True
        self.denied[tenant] += 1
        return False
