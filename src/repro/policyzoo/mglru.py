"""MGLRU-style generational clock: multi-generation aging with
promotion on re-reference.

Pages are grouped into numbered generations.  Inserts land in the
youngest generation; a re-reference (``touch``) promotes the page to the
youngest generation's tail.  When the youngest generation fills up
(``capacity / max_gens`` pages) a fresh, strictly younger generation is
opened — generation numbers are monotonically increasing and never
reused, which is what makes aging auditable.  Eviction takes the FIFO
head of the oldest non-empty generation.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import CapacityError, PageStateError, SimulationError
from repro.policyzoo.base import EvictionPolicy


class GenClockReplacement(EvictionPolicy):
    """Generational clock over ``capacity`` pages with ``max_gens``
    live generations' worth of aging granularity."""

    def __init__(self, capacity: int, max_gens: int = 4) -> None:
        if capacity < 1:
            raise CapacityError(
                f"generational clock needs capacity >= 1, got {capacity}"
            )
        if max_gens < 2:
            raise CapacityError(f"need at least 2 generations, got {max_gens}")
        self.capacity = capacity
        self.max_gens = max_gens
        self.gen_target = max(1, capacity // max_gens)
        #: Monotonically increasing id of the youngest generation.
        self._youngest = 0
        # gen id -> insertion-ordered page set (values unused).
        self._gens: dict[int, dict[int, None]] = {0: {}}
        self._gen_of: dict[int, int] = {}

    # -- membership ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._gen_of)

    def __contains__(self, page: int) -> bool:
        return page in self._gen_of

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    @property
    def youngest_generation(self) -> int:
        return self._youngest

    def generation_of(self, page: int) -> int:
        try:
            return self._gen_of[page]
        except KeyError:
            raise PageStateError(
                f"page {page} not tracked by the generational clock"
            ) from None

    def pages(self) -> Iterable[int]:
        """Pages oldest generation first, FIFO order within each."""
        out: list[int] = []
        for gen in sorted(self._gens):
            out.extend(self._gens[gen])
        return out

    # -- aging --------------------------------------------------------
    def _youngest_slot(self) -> dict[int, None]:
        """The youngest generation's page set, opening a fresh
        generation when the current one is at target size."""
        current = self._gens[self._youngest]
        if len(current) >= self.gen_target:
            self._youngest += 1
            self._gens[self._youngest] = {}
            current = self._gens[self._youngest]
        return current

    def _drop_if_empty(self, gen: int) -> None:
        if gen != self._youngest and not self._gens[gen]:
            del self._gens[gen]

    # -- mutation -----------------------------------------------------
    def insert(self, page: int, referenced: bool = True) -> None:
        if page in self._gen_of:
            raise PageStateError(
                f"page {page} already tracked by the generational clock"
            )
        if self.full:
            raise CapacityError(
                "generational clock is full; evict before inserting"
            )
        self._youngest_slot()[page] = None
        self._gen_of[page] = self._youngest

    def touch(self, page: int) -> None:
        gen = self.generation_of(page)
        if gen == self._youngest:
            # Refresh recency within the generation.
            slot = self._gens[gen]
            del slot[page]
            slot[page] = None
            return
        del self._gens[gen][page]
        self._drop_if_empty(gen)
        self._youngest_slot()[page] = None
        self._gen_of[page] = self._youngest

    def remove(self, page: int) -> None:
        gen = self.generation_of(page)
        del self._gens[gen][page]
        del self._gen_of[page]
        self._drop_if_empty(gen)

    # -- victim selection ---------------------------------------------
    def select_victim(self) -> int:
        if not self._gen_of:
            raise PageStateError(
                "cannot select a victim: generational clock is empty"
            )
        for gen in sorted(self._gens):
            slot = self._gens[gen]
            if slot:
                page = next(iter(slot))
                del slot[page]
                del self._gen_of[page]
                self._drop_if_empty(gen)
                return page
        raise SimulationError("generational clock tracked pages but no "
                              "generation holds any")

    def select_victim_where(
        self, predicate: Callable[[int], bool]
    ) -> int | None:
        for gen in sorted(self._gens):
            for page in self._gens[gen]:
                if predicate(page):
                    del self._gens[gen][page]
                    del self._gen_of[page]
                    self._drop_if_empty(gen)
                    return page
        return None

    # -- audit hook ---------------------------------------------------
    def check_integrity(self) -> None:
        listed = [p for gen in self._gens.values() for p in gen]
        if len(listed) != len(set(listed)):
            raise SimulationError(
                "generational clock invariant broken: a page appears in "
                "more than one generation"
            )
        if set(listed) != set(self._gen_of):
            raise SimulationError(
                "generational clock invariant broken: generation contents "
                "diverge from the page index"
            )
        for page, gen in self._gen_of.items():
            if gen > self._youngest:
                raise SimulationError(
                    f"generational clock invariant broken: page {page} in "
                    f"generation {gen} > youngest {self._youngest}"
                )
        if len(self._gen_of) > self.capacity:
            raise SimulationError(
                f"generational clock resident set {len(self._gen_of)} "
                f"exceeds capacity {self.capacity}"
            )
