"""The eviction-policy strategy interface.

Both replacement structures the runtime drives — ``t1_clock`` over the
GPU tier and ``_t2_order`` over the host tier — satisfy this contract.
``ClockReplacement``, ``Tier2Fifo`` and ``Tier2Clock`` in ``repro.mem``
predate the zoo and satisfy it structurally (duck typing); the zoo
members subclass :class:`EvictionPolicy` directly.

Contract (see ``docs/policies.md`` for the full statement):

- ``insert(page, referenced=...)`` — admit a page; raises
  ``PageStateError`` when already tracked and ``CapacityError`` when the
  structure is full (capacity-bounded members only).
- ``touch(page)`` — record a re-reference of a tracked page.
- ``remove(page)`` — forget a page (tier promotion/teardown); raises
  ``PageStateError`` when untracked.
- ``select_victim()`` — remove and return the policy's victim; raises
  ``PageStateError`` when empty.
- ``select_victim_where(predicate)`` — remove and return a victim
  matching ``predicate``, or ``None`` when no tracked page matches.
  The filtered sweep must leave every non-matching page's bookkeeping
  (membership, recency/frequency state, queue position) untouched.
- ``pages()``, ``__len__``, ``__contains__`` — introspection.
- ``check_integrity()`` (optional) — raise ``SimulationError`` when an
  internal structural invariant is broken; the conformance audit calls
  it when present (the ``eviction-structural`` identity).
"""

from __future__ import annotations

from typing import Callable, Iterable


class EvictionPolicy:
    """Abstract base for zoo members; documents the strategy contract."""

    def insert(self, page: int, referenced: bool = True) -> None:
        raise NotImplementedError

    def touch(self, page: int) -> None:
        raise NotImplementedError

    def remove(self, page: int) -> None:
        raise NotImplementedError

    def select_victim(self) -> int:
        raise NotImplementedError

    def select_victim_where(
        self, predicate: Callable[[int], bool]
    ) -> int | None:
        raise NotImplementedError

    def pages(self) -> Iterable[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, page: int) -> bool:
        raise NotImplementedError

    def check_integrity(self) -> None:
        """Hook for the conformance audit; default: nothing to check."""
