"""Per-tenant policy partitioning: one private policy instance per
tenant, routed by page ownership.

``PartitionedPolicy`` presents the single-structure
:class:`~repro.policyzoo.base.EvictionPolicy` interface the runtime
drives, while internally each page lives in its owning tenant's
sub-policy (cache_ext-style).  Quota pressure is still applied by the
serving runtime's victim-selection hooks — via filtered sweeps, which
delegate tenant-by-tenant — so the partition composes with, rather than
replaces, ``TierQuotas``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import PageStateError, SimulationError
from repro.policyzoo.base import EvictionPolicy


class PartitionedPolicy(EvictionPolicy):
    """Route pages to per-tenant sub-policies by ``owner_of(page)``.

    Each sub-policy is built with the FULL tier capacity: budgets are
    the quota layer's job, and a tenant may legitimately hold more than
    an equal share when its peers are idle.
    """

    def __init__(
        self,
        policies: Sequence,
        owner_of: Callable[[int], int],
        names: Sequence[str] | None = None,
    ) -> None:
        self.policies = list(policies)
        self.names = tuple(names) if names is not None else tuple(
            type(p).__name__ for p in self.policies
        )
        self._owner_of = owner_of

    def _sub(self, page: int):
        owner = self._owner_of(page)
        if not 0 <= owner < len(self.policies):
            raise PageStateError(
                f"page {page} belongs to tenant {owner}, outside the "
                f"{len(self.policies)}-tenant partition"
            )
        return self.policies[owner]

    # -- delegation ---------------------------------------------------
    def insert(self, page: int, referenced: bool = True) -> None:
        self._sub(page).insert(page, referenced=referenced)

    def touch(self, page: int) -> None:
        self._sub(page).touch(page)

    def remove(self, page: int) -> None:
        self._sub(page).remove(page)

    def __len__(self) -> int:
        return sum(len(p) for p in self.policies)

    def __contains__(self, page: int) -> bool:
        return page in self._sub(page)

    def pages(self) -> Iterable[int]:
        out: list[int] = []
        for policy in self.policies:
            out.extend(policy.pages())
        return out

    # -- victim selection ---------------------------------------------
    def select_victim(self) -> int:
        """Unfiltered pressure lands on the largest partition (ties:
        lowest tenant index), then that tenant's own policy picks."""
        best_index = -1
        best_size = 0
        for index, policy in enumerate(self.policies):
            size = len(policy)
            if size > best_size:
                best_index, best_size = index, size
        if best_index < 0:
            raise PageStateError(
                "cannot select a victim: every partition is empty"
            )
        return self.policies[best_index].select_victim()

    def select_victim_where(
        self, predicate: Callable[[int], bool]
    ) -> int | None:
        for policy in self.policies:
            victim = policy.select_victim_where(predicate)
            if victim is not None:
                return victim
        return None

    # -- audit hook ---------------------------------------------------
    def check_integrity(self) -> None:
        for index, policy in enumerate(self.policies):
            check = getattr(policy, "check_integrity", None)
            if check is not None:
                check()
            for page in policy.pages():
                if self._owner_of(page) != index:
                    raise SimulationError(
                        f"partition invariant broken: page {page} owned by "
                        f"tenant {self._owner_of(page)} found in tenant "
                        f"{index}'s policy"
                    )
