"""LHD-lite: sampled hit-density ranking.

Full LHD learns a hit-density distribution per page class; this lite
variant keeps the core idea — evict the page with the lowest observed
hits per unit of age — while staying exactly deterministic for the
replay engine.  Age is measured on a logical clock that ticks on every
insert and touch, and victim selection ranks a deterministic sample of
candidates taken by a rotating cursor over insertion order (so repeated
evictions sweep the whole resident set instead of re-examining one
corner).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import CapacityError, PageStateError, SimulationError
from repro.policyzoo.base import EvictionPolicy

#: Candidates examined per (unfiltered) victim selection.
_SAMPLE = 8


class LhdReplacement(EvictionPolicy):
    """Lowest-hit-density eviction over ``capacity`` pages."""

    def __init__(self, capacity: int, sample: int = _SAMPLE) -> None:
        if capacity < 1:
            raise CapacityError(f"LHD needs capacity >= 1, got {capacity}")
        if sample < 1:
            raise CapacityError(f"LHD sample must be >= 1, got {sample}")
        self.capacity = capacity
        self.sample = sample
        self._now = 0
        self._cursor = 0
        # Insertion-ordered page -> [hits, birth tick]
        self._state: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._state)

    def __contains__(self, page: int) -> bool:
        return page in self._state

    @property
    def full(self) -> bool:
        return len(self._state) >= self.capacity

    def pages(self) -> Iterable[int]:
        return list(self._state)

    def insert(self, page: int, referenced: bool = True) -> None:
        if page in self._state:
            raise PageStateError(f"page {page} already tracked by LHD")
        if self.full:
            raise CapacityError("LHD is full; evict before inserting")
        self._now += 1
        self._state[page] = [1 if referenced else 0, self._now]

    def touch(self, page: int) -> None:
        if page not in self._state:
            raise PageStateError(f"page {page} not tracked by LHD")
        self._now += 1
        self._state[page][0] += 1

    def remove(self, page: int) -> None:
        if self._state.pop(page, None) is None:
            raise PageStateError(f"page {page} not tracked by LHD")

    def _density(self, page: int) -> float:
        hits, birth = self._state[page]
        return hits / (self._now - birth + 1)

    def select_victim(self) -> int:
        if not self._state:
            raise PageStateError("cannot select a victim: LHD is empty")
        resident = list(self._state)
        start = self._cursor % len(resident)
        count = min(self.sample, len(resident))
        candidates = [resident[(start + i) % len(resident)] for i in range(count)]
        self._cursor = (start + count) % max(1, len(resident))
        # Lowest density loses; ties go to the oldest birth tick so the
        # choice is order-independent and deterministic.
        victim = min(
            candidates, key=lambda p: (self._density(p), self._state[p][1])
        )
        del self._state[victim]
        return victim

    def select_victim_where(
        self, predicate: Callable[[int], bool]
    ) -> int | None:
        # Filtered sweeps rank the full matching set (not a sample) so
        # a match is never missed; non-matching pages are untouched.
        matching = [p for p in self._state if predicate(p)]
        if not matching:
            return None
        victim = min(
            matching, key=lambda p: (self._density(p), self._state[p][1])
        )
        del self._state[victim]
        return victim

    def check_integrity(self) -> None:
        if len(self._state) > self.capacity:
            raise SimulationError(
                f"LHD resident set {len(self._state)} exceeds capacity "
                f"{self.capacity}"
            )
        for page, (hits, birth) in self._state.items():
            if birth > self._now or hits < 0:
                raise SimulationError(
                    f"LHD invariant broken: page {page} has hits={hits}, "
                    f"birth={birth} > now={self._now}"
                )
