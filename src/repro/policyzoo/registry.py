"""The eviction-policy registry: one source of truth for names.

CLIs (``gmt-serve --tier1-policy``, ``gmt-check --tier1-policy``),
configuration validation (``GMTConfig.tier1_eviction``) and the runtime
constructor all resolve policy names here.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mem.clock_replacement import ClockReplacement
from repro.mem.tier2_order import Tier2Clock, Tier2Fifo
from repro.policyzoo.freq import LfuReplacement, MruReplacement
from repro.policyzoo.lhd import LhdReplacement
from repro.policyzoo.mglru import GenClockReplacement
from repro.policyzoo.s3fifo import S3FifoReplacement

#: The five members added on top of the historical clock/FIFO pair.
ZOO_POLICY_NAMES = ("s3fifo", "mglru", "lfu", "mru", "lhd")

#: Every name accepted by :func:`make_eviction_policy`.
EVICTION_POLICY_NAMES = ("clock", "fifo") + ZOO_POLICY_NAMES

#: One-line summaries, rendered into ``--help`` and ``docs/policies.md``.
POLICY_SUMMARIES = {
    "clock": "second-chance clock (GMT default at both tiers)",
    "fifo": "plain FIFO queue (historical Tier-2 default)",
    "s3fifo": "small/main queues + ghost history (quick-demotion FIFO)",
    "mglru": "generational clock: multi-gen aging, promote on re-reference",
    "lfu": "least-frequently-used, oldest-first tiebreak",
    "mru": "most-recently-used (scan-resistant for cyclic sweeps)",
    "lhd": "LHD-lite: sampled lowest-hit-density eviction",
}


def validate_policy_name(name: str) -> str:
    """Return ``name`` if registered; raise ``ConfigError`` otherwise."""
    if name not in EVICTION_POLICY_NAMES:
        raise ConfigError(
            f"unknown eviction policy {name!r}; choose from: "
            f"{', '.join(EVICTION_POLICY_NAMES)}"
        )
    return name


def make_eviction_policy(name: str, capacity: int, tier: int = 1):
    """Build a fresh policy instance for a tier of ``capacity`` frames.

    ``tier`` only matters for ``clock``: Tier-1 uses the raw
    ``ClockReplacement`` (referenced inserts), Tier-2 the ``Tier2Clock``
    adapter (demoted pages arrive cold), preserving the pre-zoo
    behaviour of both tiers bit-for-bit.  ``fifo`` is unbounded, as the
    historical Tier-2 order structure was; every other member enforces
    ``capacity``.
    """
    validate_policy_name(name)
    if name == "clock":
        return ClockReplacement(capacity) if tier == 1 else Tier2Clock(capacity)
    if name == "fifo":
        return Tier2Fifo()
    if name == "s3fifo":
        return S3FifoReplacement(capacity)
    if name == "mglru":
        return GenClockReplacement(capacity)
    if name == "lfu":
        return LfuReplacement(capacity)
    if name == "mru":
        return MruReplacement(capacity)
    if name == "lhd":
        return LhdReplacement(capacity)
    raise ConfigError(f"unhandled eviction policy {name!r}")  # unreachable


def policy_summary() -> list[tuple[str, str]]:
    """(name, one-line description) rows in registry order."""
    return [(name, POLICY_SUMMARIES[name]) for name in EVICTION_POLICY_NAMES]
