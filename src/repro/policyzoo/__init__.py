"""Pluggable eviction policies, per-tenant partitioning, and migration
admission control.

The zoo generalises the hard-wired Tier-1 clock / Tier-2 FIFO into a
strategy interface (:class:`~repro.policyzoo.base.EvictionPolicy`) with a
registry of interchangeable implementations:

========  ==========================================================
name      structure
========  ==========================================================
clock     second-chance clock (the GMT default at both tiers)
fifo      plain FIFO (the historical Tier-2 default)
s3fifo    S3-FIFO: small/main queues + ghost history
mglru     MGLRU-style generational clock (multi-gen aging)
lfu       least-frequently-used (ties broken oldest-first)
mru       most-recently-used (scan-resistant for cyclic sweeps)
lhd       LHD-lite: sampled hit-density ranking
========  ==========================================================

Every member honours the filtered-sweep contract proven on
``ClockReplacement``/``Tier2Fifo``: ``select_victim_where(pred)`` returns
(and removes) a victim matching ``pred`` while leaving every
non-matching page's bookkeeping untouched, or returns ``None`` when no
resident page matches.

:class:`~repro.policyzoo.partition.PartitionedPolicy` routes each page to
its owning tenant's private policy instance (cache_ext-style per-tenant
policies), and :class:`~repro.policyzoo.governor.MigrationGovernor`
rate-limits tier migrations per tenant with token buckets
(TierBPF-style admission control).  See ``docs/policies.md``.
"""

from __future__ import annotations

from repro.policyzoo.base import EvictionPolicy
from repro.policyzoo.freq import LfuReplacement, MruReplacement
from repro.policyzoo.governor import GovernorConfig, MigrationGovernor
from repro.policyzoo.lhd import LhdReplacement
from repro.policyzoo.mglru import GenClockReplacement
from repro.policyzoo.partition import PartitionedPolicy
from repro.policyzoo.registry import (
    EVICTION_POLICY_NAMES,
    ZOO_POLICY_NAMES,
    make_eviction_policy,
    policy_summary,
)
from repro.policyzoo.s3fifo import S3FifoReplacement

__all__ = [
    "EVICTION_POLICY_NAMES",
    "EvictionPolicy",
    "GenClockReplacement",
    "GovernorConfig",
    "LfuReplacement",
    "LhdReplacement",
    "MigrationGovernor",
    "MruReplacement",
    "PartitionedPolicy",
    "S3FifoReplacement",
    "ZOO_POLICY_NAMES",
    "make_eviction_policy",
    "policy_summary",
]
