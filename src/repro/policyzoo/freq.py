"""Frequency/recency extremes: LFU and MRU.

Both keep exact per-page state and select victims by a full scan —
O(n) per eviction is perfectly affordable at simulation scale and keeps
the reference semantics unambiguous for the conformance audit.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import CapacityError, PageStateError, SimulationError
from repro.policyzoo.base import EvictionPolicy


class LfuReplacement(EvictionPolicy):
    """Least-frequently-used; ties broken by insertion order (oldest
    first), so the structure is fully deterministic."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CapacityError(f"LFU needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        self._seq = 0
        # page -> [frequency, insertion sequence]
        self._state: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._state)

    def __contains__(self, page: int) -> bool:
        return page in self._state

    @property
    def full(self) -> bool:
        return len(self._state) >= self.capacity

    def pages(self) -> Iterable[int]:
        return list(self._state)

    def insert(self, page: int, referenced: bool = True) -> None:
        if page in self._state:
            raise PageStateError(f"page {page} already tracked by LFU")
        if self.full:
            raise CapacityError("LFU is full; evict before inserting")
        self._seq += 1
        self._state[page] = [1 if referenced else 0, self._seq]

    def touch(self, page: int) -> None:
        try:
            self._state[page][0] += 1
        except KeyError:
            raise PageStateError(f"page {page} not tracked by LFU") from None

    def remove(self, page: int) -> None:
        if self._state.pop(page, None) is None:
            raise PageStateError(f"page {page} not tracked by LFU")

    def _best(self, predicate: Callable[[int], bool] | None) -> int | None:
        best_key: tuple[int, int] | None = None
        best_page: int | None = None
        for page, (freq, seq) in self._state.items():
            if predicate is not None and not predicate(page):
                continue
            key = (freq, seq)
            if best_key is None or key < best_key:
                best_key, best_page = key, page
        return best_page

    def select_victim(self) -> int:
        if not self._state:
            raise PageStateError("cannot select a victim: LFU is empty")
        victim = self._best(None)
        del self._state[victim]
        return victim

    def select_victim_where(
        self, predicate: Callable[[int], bool]
    ) -> int | None:
        victim = self._best(predicate)
        if victim is not None:
            del self._state[victim]
        return victim

    def check_integrity(self) -> None:
        if len(self._state) > self.capacity:
            raise SimulationError(
                f"LFU resident set {len(self._state)} exceeds capacity "
                f"{self.capacity}"
            )


class MruReplacement(EvictionPolicy):
    """Most-recently-used: evicts the page touched last.  Pathological
    for temporal locality, near-optimal for cyclic scans larger than
    the tier — the adversarial member of the zoo."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CapacityError(f"MRU needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        self._seq = 0
        # page -> last-reference sequence number
        self._last: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._last)

    def __contains__(self, page: int) -> bool:
        return page in self._last

    @property
    def full(self) -> bool:
        return len(self._last) >= self.capacity

    def pages(self) -> Iterable[int]:
        return list(self._last)

    def insert(self, page: int, referenced: bool = True) -> None:
        if page in self._last:
            raise PageStateError(f"page {page} already tracked by MRU")
        if self.full:
            raise CapacityError("MRU is full; evict before inserting")
        self._seq += 1
        self._last[page] = self._seq

    def touch(self, page: int) -> None:
        if page not in self._last:
            raise PageStateError(f"page {page} not tracked by MRU")
        self._seq += 1
        self._last[page] = self._seq

    def remove(self, page: int) -> None:
        if self._last.pop(page, None) is None:
            raise PageStateError(f"page {page} not tracked by MRU")

    def _best(self, predicate: Callable[[int], bool] | None) -> int | None:
        best_seq = -1
        best_page: int | None = None
        for page, seq in self._last.items():
            if predicate is not None and not predicate(page):
                continue
            if seq > best_seq:
                best_seq, best_page = seq, page
        return best_page

    def select_victim(self) -> int:
        if not self._last:
            raise PageStateError("cannot select a victim: MRU is empty")
        victim = self._best(None)
        del self._last[victim]
        return victim

    def select_victim_where(
        self, predicate: Callable[[int], bool]
    ) -> int | None:
        victim = self._best(predicate)
        if victim is not None:
            del self._last[victim]
        return victim

    def check_integrity(self) -> None:
        if len(self._last) > self.capacity:
            raise SimulationError(
                f"MRU resident set {len(self._last)} exceeds capacity "
                f"{self.capacity}"
            )
