"""S3-FIFO replacement: small/main resident queues plus a ghost history.

New pages enter the *small* probationary queue (sized at ~10% of
capacity).  A small-queue page evicted without any re-reference leaves a
*ghost* entry behind — a non-resident breadcrumb bounded at ``capacity``
entries — so a quick re-admission is recognised as a hot page and lands
directly in *main*.  A small-queue page that was re-referenced while
probationary is promoted to main instead of evicted.  Main-queue
eviction gives re-referenced pages a second chance by re-queueing them
with a decremented frequency.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import CapacityError, PageStateError, SimulationError
from repro.policyzoo.base import EvictionPolicy

#: Saturation bound for the per-page frequency counter (as in the paper:
#: two bits are enough).
_FREQ_MAX = 3


class S3FifoReplacement(EvictionPolicy):
    """S3-FIFO over ``capacity`` resident pages."""

    def __init__(self, capacity: int, small_fraction: float = 0.1) -> None:
        if capacity < 1:
            raise CapacityError(f"S3-FIFO needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        self.small_target = max(1, int(capacity * small_fraction))
        self.ghost_bound = capacity
        # Insertion-ordered page -> saturating frequency counter.
        self._small: dict[int, int] = {}
        self._main: dict[int, int] = {}
        # Insertion-ordered ghost set (values unused).
        self._ghost: dict[int, None] = {}

    # -- membership ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._small) + len(self._main)

    def __contains__(self, page: int) -> bool:
        return page in self._small or page in self._main

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    def pages(self) -> Iterable[int]:
        """Resident pages, small queue first, FIFO order within each."""
        return list(self._small) + list(self._main)

    def ghost_pages(self) -> Iterable[int]:
        return list(self._ghost)

    # -- mutation -----------------------------------------------------
    def insert(self, page: int, referenced: bool = True) -> None:
        if page in self:
            raise PageStateError(f"page {page} already tracked by S3-FIFO")
        if self.full:
            raise CapacityError("S3-FIFO is full; evict before inserting")
        if page in self._ghost:
            # A recent ghost hit: the page proved itself, skip probation.
            del self._ghost[page]
            self._main[page] = 0
        else:
            self._small[page] = 0

    def touch(self, page: int) -> None:
        for queue in (self._small, self._main):
            if page in queue:
                queue[page] = min(queue[page] + 1, _FREQ_MAX)
                return
        raise PageStateError(f"page {page} not tracked by S3-FIFO")

    def remove(self, page: int) -> None:
        if page in self._small:
            del self._small[page]
        elif page in self._main:
            del self._main[page]
        else:
            raise PageStateError(f"page {page} not tracked by S3-FIFO")

    # -- victim selection ---------------------------------------------
    def _remember_ghost(self, page: int) -> None:
        while len(self._ghost) >= self.ghost_bound:
            oldest = next(iter(self._ghost))
            del self._ghost[oldest]
        self._ghost[page] = None

    def _evict_small(self) -> int | None:
        """One small-queue pass: evict or promote the head; None if the
        head was promoted (caller retries)."""
        page, freq = next(iter(self._small.items()))
        del self._small[page]
        if freq > 0:
            self._main[page] = 0
            return None
        self._remember_ghost(page)
        return page

    def _evict_main(self) -> int | None:
        """One main-queue pass: evict the head, or re-queue it with a
        second chance; None if re-queued (caller retries)."""
        page, freq = next(iter(self._main.items()))
        del self._main[page]
        if freq > 0:
            self._main[page] = freq - 1
            return None
        return page

    def select_victim(self) -> int:
        if not self._small and not self._main:
            raise PageStateError("cannot select a victim: S3-FIFO is empty")
        # Each pass either evicts or strictly decrements a frequency /
        # drains the small queue, so the loop terminates well inside
        # this bound.
        for _ in range((len(self) + 1) * (_FREQ_MAX + 2)):
            if self._small and (
                len(self._small) >= self.small_target or not self._main
            ):
                victim = self._evict_small()
            else:
                victim = self._evict_main()
            if victim is not None:
                return victim
        raise SimulationError("S3-FIFO victim sweep failed to terminate")

    def select_victim_where(
        self, predicate: Callable[[int], bool]
    ) -> int | None:
        # A filtered sweep must not disturb non-matching pages, so it
        # cannot run the normal promote/re-queue machinery.  Rank the
        # matching pages by the policy's preference instead: colder
        # first, probationary (small) before established (main), FIFO
        # order as the tiebreak — then remove exactly that page.
        best: tuple[int, int, int] | None = None
        best_page: int | None = None
        for queue_rank, queue in ((0, self._small), (1, self._main)):
            for position, (page, freq) in enumerate(queue.items()):
                if not predicate(page):
                    continue
                key = (freq, queue_rank, position)
                if best is None or key < best:
                    best, best_page = key, page
        if best_page is None:
            return None
        if best_page in self._small:
            del self._small[best_page]
            self._remember_ghost(best_page)
        else:
            del self._main[best_page]
        return best_page

    # -- audit hook ---------------------------------------------------
    def check_integrity(self) -> None:
        overlap = self._small.keys() & self._main.keys()
        if overlap:
            raise SimulationError(
                f"S3-FIFO invariant broken: {len(overlap)} page(s) in both "
                f"small and main (e.g. {next(iter(overlap))})"
            )
        resident_ghosts = self._ghost.keys() & (
            self._small.keys() | self._main.keys()
        )
        if resident_ghosts:
            raise SimulationError(
                f"S3-FIFO invariant broken: {len(resident_ghosts)} resident "
                "page(s) still in the ghost queue"
            )
        if len(self._ghost) > self.ghost_bound:
            raise SimulationError(
                f"S3-FIFO ghost queue overflow: {len(self._ghost)} entries "
                f"> bound {self.ghost_bound}"
            )
        if len(self) > self.capacity:
            raise SimulationError(
                f"S3-FIFO resident set {len(self)} exceeds capacity "
                f"{self.capacity}"
            )
