"""Eq. 1: classify a remaining reuse distance into short / medium / long.

::

    T(RRD) = short-reuse,   if RRD <  sizeof(Tier1)
             medium-reuse,  if sizeof(Tier1) <= RRD < sizeof(Tier2)
             long-reuse,    if RRD >= sizeof(Tier2)

Sizes are in *pages* (reuse distance counts unique pages).  Following the
paper's Figure 7, whose vertical lines sit at "GPU memory capacity" and
"GPU+CPU memory capacities", ``sizeof(Tier2)`` is interpreted as the
cumulative capacity reachable at Tier-2, i.e. Tier-1 + Tier-2 frames.

The classes double as tier destinations: short-reuse pages stay in Tier-1,
medium-reuse pages go to Tier-2, long-reuse pages bypass to Tier-3.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError


class ReuseClass(enum.Enum):
    """The three RRD equivalence classes of Eq. 1 (== target tiers)."""

    SHORT = 1  # retain in Tier-1
    MEDIUM = 2  # place in Tier-2 (host memory)
    LONG = 3  # bypass to Tier-3 (discard clean / write dirty to SSD)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return {1: "short-reuse", 2: "medium-reuse", 3: "long-reuse"}[self.value]


class RRDClassifier:
    """Maps an RRD (in unique pages) to a :class:`ReuseClass` per Eq. 1."""

    def __init__(self, tier1_frames: int, tier2_frames: int) -> None:
        if tier1_frames <= 0:
            raise ConfigError(f"tier1_frames must be positive, got {tier1_frames}")
        if tier2_frames < 0:
            raise ConfigError(f"tier2_frames must be non-negative, got {tier2_frames}")
        self.tier1_frames = tier1_frames
        self.tier2_frames = tier2_frames
        #: Eq. 1 boundary between short and medium.
        self.short_bound = tier1_frames
        #: Eq. 1 boundary between medium and long (cumulative capacity).
        self.medium_bound = tier1_frames + tier2_frames

    def classify(self, rrd: float | None) -> ReuseClass:
        """Classify ``rrd``; ``None`` (no predicted reuse) is long-reuse."""
        if rrd is None:
            return ReuseClass.LONG
        if rrd < 0:
            raise ValueError(f"negative RRD: {rrd}")
        if rrd < self.short_bound:
            return ReuseClass.SHORT
        if rrd < self.medium_bound:
            return ReuseClass.MEDIUM
        return ReuseClass.LONG
