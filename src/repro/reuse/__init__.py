"""Reuse-distance machinery behind GMT-Reuse (paper section 2.1.3).

- :mod:`repro.reuse.distance` — exact (unique) reuse distances via the
  classic Fenwick/order-statistic-tree algorithm, the "tree-based method
  [13, 17]" the paper's CPU helper thread runs;
- :mod:`repro.reuse.vtd` — Virtual Timestamp Distance tracking, the cheap
  proxy the GPU maintains with one global counter + per-page timestamps;
- :mod:`repro.reuse.sampler` — collection of (VTD, RD) training pairs early
  in the execution, pipelined to the regression every N samples;
- :mod:`repro.reuse.regression` — incremental Ordinary Least Squares giving
  the linear map RD = m * VTD + b (Eq. 2/3);
- :mod:`repro.reuse.classifier` — Eq. 1's short/medium/long categories;
- :mod:`repro.reuse.markov` — the 3-state Markov-chain tier predictor
  (Fig. 5) built on 2-level per-page eviction history.
"""

from repro.reuse.classifier import ReuseClass, RRDClassifier
from repro.reuse.distance import ReuseDistanceTracker
from repro.reuse.markov import MarkovTierPredictor
from repro.reuse.regression import IncrementalOLS, fit_ols
from repro.reuse.sampler import VTDSampler
from repro.reuse.vtd import VirtualTimestampClock

__all__ = [
    "IncrementalOLS",
    "MarkovTierPredictor",
    "ReuseClass",
    "ReuseDistanceTracker",
    "RRDClassifier",
    "VTDSampler",
    "VirtualTimestampClock",
    "fit_ols",
]
