"""Ordinary Least Squares for the VTD -> reuse-distance linear map.

Paper Eq. 2/3: ``RD = m * VTD + b`` and ``RRD = m * RVTD + b``.  The CPU
helper thread "performs an Ordinary Least Squares (OLS) regression on those
samples to get coefficients, slope m and offset b"; samples arrive in
pipelined batches and the fit "iteratively improves on the regression from
the prior set of samples".  :class:`IncrementalOLS` therefore accumulates
sufficient statistics so each new batch refines, rather than replaces, the
model.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class LinearModel:
    """A fitted ``y = m * x + b`` line."""

    m: float
    b: float

    def predict(self, x: float) -> float:
        return self.m * x + self.b


def fit_ols(xs: Sequence[float], ys: Sequence[float]) -> LinearModel:
    """One-shot OLS fit (closed form).  Requires >= 2 points with x-variance.

    Raises:
        ValueError: on too few points or zero variance in ``xs``.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    ols = IncrementalOLS()
    ols.update(xs, ys)
    return ols.model()


class IncrementalOLS:
    """OLS over a growing sample set via running sufficient statistics.

    Keeps n, sum(x), sum(y), sum(x^2), sum(x*y); a fit is O(1) from these.
    Numerically adequate here because VTDs and RDs are modest non-negative
    integers (bounded by trace length).
    """

    def __init__(self) -> None:
        self._n = 0
        self._sum_x = 0.0
        self._sum_y = 0.0
        self._sum_xx = 0.0
        self._sum_xy = 0.0

    @property
    def count(self) -> int:
        return self._n

    def add(self, x: float, y: float) -> None:
        """Incorporate one (x, y) sample."""
        self._n += 1
        self._sum_x += x
        self._sum_y += y
        self._sum_xx += x * x
        self._sum_xy += x * y

    def update(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Incorporate a batch of samples (one pipelined flush)."""
        if len(xs) != len(ys):
            raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
        for x, y in zip(xs, ys):
            self.add(x, y)

    @property
    def ready(self) -> bool:
        """True when a line (or its degenerate fallback) can be fit."""
        if self._n < 2:
            return False
        return self._x_variance_numerator() > self._degenerate_threshold() or (
            self._sum_x > 0.0
        )

    def _x_variance_numerator(self) -> float:
        return self._n * self._sum_xx - self._sum_x * self._sum_x

    def _degenerate_threshold(self) -> float:
        # Relative cutoff below which the xs are effectively constant.
        return 1e-9 * max(1.0, self._n * self._sum_xx)

    def model(self) -> LinearModel:
        """Fit and return the current line.

        Perfectly periodic workloads (e.g. fixed-order grid sweeps) produce
        a *constant* VTD: zero x-variance, so the OLS slope is undefined.
        The natural degenerate fit is the ratio estimator through the
        origin, ``m = mean(y)/mean(x)`` — proportionality is exactly the
        relation Figure 4(a) observes.

        Raises:
            ValueError: if :attr:`ready` is false.
        """
        if self._n < 2:
            raise ValueError(f"cannot fit OLS: n={self._n}")
        denom = self._x_variance_numerator()
        if denom <= self._degenerate_threshold():
            if self._sum_x <= 0.0:
                raise ValueError("cannot fit OLS: xs are constant at zero")
            return LinearModel(m=self._sum_y / self._sum_x, b=0.0)
        m = (self._n * self._sum_xy - self._sum_x * self._sum_y) / denom
        b = (self._sum_y - m * self._sum_x) / self._n
        return LinearModel(m=m, b=b)
