"""Virtual Timestamp Distance (VTD) tracking.

Paper section 2.1.3: "we use the Virtual Timestamp Distance (VTD, also
known as non-unique reuse distance) as a proxy for reuse distances.  VTD of
a page at any time is the number of (possibly non-unique) accesses since
its last access.  We maintain a counter that is updated on each coalesced
access (across threads of a warp).  When a page is accessed, we timestamp
that page with this counter's value."

The clock here is the single global counter; per-page timestamps live in
:class:`~repro.mem.page.PageState.last_access_ts` so every runtime shares
one source of truth.
"""

from __future__ import annotations

from repro.mem.page import PageState


class VirtualTimestampClock:
    """Global coalesced-access counter plus the VTD arithmetic around it."""

    def __init__(self) -> None:
        self._now = 0

    @property
    def now(self) -> int:
        """Current virtual time (number of coalesced accesses so far)."""
        return self._now

    def tick(self) -> int:
        """Advance virtual time by one coalesced access; returns new time."""
        self._now += 1
        return self._now

    def advance(self, count: int) -> None:
        """Advance virtual time by ``count`` coalesced accesses at once.

        Used by the vectorized replay engine to retire a batch of hits:
        ``advance(k)`` leaves the clock exactly where ``k`` calls to
        :meth:`tick` would (per-page timestamps for the batch are stamped
        separately, see :mod:`repro.core.vector`).
        """
        if count < 0:
            raise ValueError(f"cannot advance virtual time by {count}")
        self._now += count

    def observe_access(self, state: PageState) -> int | None:
        """Advance the clock for an access to ``state``'s page and return
        the access's VTD (``None`` on the page's first access).

        Also stamps the page with the new time and bumps its access count.
        """
        now = self.tick()
        vtd: int | None = None
        if state.last_access_ts is not None:
            vtd = now - state.last_access_ts
        state.last_access_ts = now
        state.access_count += 1
        return vtd

    def remaining_vtd_since(self, timestamp: int) -> int:
        """Virtual time elapsed since ``timestamp``.

        At a page's next access after eviction, the *actual* remaining VTD
        of the eviction is ``access_time - eviction_time``; the runtime uses
        this to resolve what the "correct" tier for that eviction was
        (paper section 2.1.3, step 2).
        """
        if timestamp > self._now:
            raise ValueError(f"timestamp {timestamp} is in the future (now={self._now})")
        return self._now - timestamp
