"""The 3-state Markov-chain tier predictor (paper Fig. 5).

Paper section 2.1.3, step 2: "a simple 2-level history suffices ... We keep
track of the tiers that a page should have been placed in 'correctly' upon
its 2 prior evictions from GPU memory, and use this to implement a 3-state
Markov chain.  Each state in this chain represents the 'correct' tier that
this page should have been placed in, upon its prior eviction. ... we can
use this to update the transition weight between the 2nd last and
immediately prior eviction states.  This update is done whenever the page
is brought into GPU memory.  When the page next comes up for eviction, we
can simply look at its last 'correct' tier (state), compare the 3
transition weights coming out of this state, and use that to decide which
tier we should next place this page in."

The transition-weight matrix is shared across pages (that is what lets the
predictor generalise from pages with history to the rest), while the
2-deep "correct tier" history is per page — "Maintaining this state takes
negligible space for each page".
"""

from __future__ import annotations

from repro.reuse.classifier import ReuseClass

_STATES = (ReuseClass.SHORT, ReuseClass.MEDIUM, ReuseClass.LONG)


class MarkovTierPredictor:
    """Shared 3x3 transition weights + per-page 2-level history.

    Per-page history is stored by the caller (the runtime keeps it in
    ``PageState.policy_state``); this class owns only the weight matrix and
    the decision rules, so it is trivially testable.
    """

    def __init__(self) -> None:
        self._weights: dict[ReuseClass, dict[ReuseClass, int]] = {
            s: {t: 0 for t in _STATES} for s in _STATES
        }
        self._updates = 0

    @property
    def updates(self) -> int:
        """Number of recorded transitions (how much history exists)."""
        return self._updates

    def record_transition(self, prev2: ReuseClass, prev1: ReuseClass) -> None:
        """Bump W(prev2 -> prev1), the weight between a page's second-last
        and last correct tiers.  Called when a page returns to Tier-1 and
        its previous eviction's correct tier becomes known."""
        self._weights[prev2][prev1] += 1
        self._updates += 1

    def weight(self, src: ReuseClass, dst: ReuseClass) -> int:
        """W(src -> dst); exposed for tests and introspection."""
        return self._weights[src][dst]

    def predict(self, last_correct: ReuseClass | None) -> ReuseClass | None:
        """Predict the next correct tier from a page's last correct tier.

        Returns ``None`` when no usable history exists — either the page has
        no resolved prior eviction, or the outgoing weights from its state
        are all zero.  The caller then falls back (the paper proceeds "with
        a default strategy" in the cold phase).

        Ties are broken toward the *nearer* tier (SHORT < MEDIUM < LONG),
        biasing toward keeping data close to the GPU.
        """
        if last_correct is None:
            return None
        row = self._weights[last_correct]
        best: ReuseClass | None = None
        best_weight = 0
        for state in _STATES:  # iteration order implements the tie-break
            if row[state] > best_weight:
                best = state
                best_weight = row[state]
        return best

    def confidence(self, last_correct: ReuseClass | None) -> float:
        """Weight share of the winning transition out of ``last_correct``'s
        state — how lopsided the row behind a prediction is (1.0 = the
        history always went one way; ~1/3 = a coin toss across tiers).
        Exported to the telemetry confidence histogram."""
        if last_correct is None:
            return 0.0
        row = self._weights[last_correct]
        total = sum(row.values())
        if total == 0:
            return 0.0
        return max(row.values()) / total

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Readable copy of the weight matrix (for reports/debugging)."""
        return {
            src.name: {dst.name: w for dst, w in row.items()}
            for src, row in self._weights.items()
        }


class LastTierPredictor:
    """1-level history ablation: predict the last correct tier again.

    The paper argues a 2-level history is needed because patterns like
    PageRank's *alternate* (Figure 4(c)); this predictor exists so the
    ablation benchmarks can quantify that claim.  It implements the same
    interface as :class:`MarkovTierPredictor`.
    """

    def __init__(self) -> None:
        self._updates = 0

    @property
    def updates(self) -> int:
        return self._updates

    def record_transition(self, prev2: ReuseClass, prev1: ReuseClass) -> None:
        self._updates += 1

    def weight(self, src: ReuseClass, dst: ReuseClass) -> int:
        return 0

    def predict(self, last_correct: ReuseClass | None) -> ReuseClass | None:
        return last_correct

    def confidence(self, last_correct: ReuseClass | None) -> float:
        """Last-tier repeats are asserted with full confidence."""
        return 0.0 if last_correct is None else 1.0

    def snapshot(self) -> dict[str, dict[str, int]]:
        """No weights to report; kept for interface parity."""
        return {}
