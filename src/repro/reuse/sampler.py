"""Sampled (VTD, reuse-distance) pair collection with pipelined flushes.

Paper section 2.1.3, step 1: "the GPU pushes collected VTD samples into a
queue shared with the CPU, that is regularly consumed by a dedicated thread
on the latter.  This thread uses these samples and employs a tree-based
method to calculate actual reuse distances from the VTDs. ... rather than
wait until we get this final equation at the end of sampling, we pipeline
the samples (every 10000 samples) to the CPU thread, which iteratively
improves on the regression."

In the reproduction the "GPU side" is the sampler's :meth:`observe` call on
the access path and the "CPU side" is the reuse-distance tracker plus the
incremental OLS; the shared queue is the batch buffer between them.  The
division of labour (and the batch cadence) is preserved even though both
sides run in one process.
"""

from __future__ import annotations

from repro.reuse.distance import ReuseDistanceTracker
from repro.reuse.regression import IncrementalOLS, LinearModel


class VTDSampler:
    """Collect (VTD, RD) training pairs early in execution and maintain the
    pipelined OLS fit of RD = m * VTD + b.

    Args:
        sample_target: stop collecting after this many *pairs* (the paper
            collects "hundreds of thousands"; scaled configs use fewer).
        batch_size: flush cadence to the regression (paper: 10 000).
    """

    #: Optional :class:`~repro.obs.telemetry.Telemetry` — feeds the
    #: reuse-distance histogram and flush markers; None costs one check.
    telemetry = None

    def __init__(self, sample_target: int = 100_000, batch_size: int = 10_000) -> None:
        if sample_target <= 0:
            raise ValueError(f"sample_target must be positive, got {sample_target}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.sample_target = sample_target
        self.batch_size = batch_size
        self._rd_tracker = ReuseDistanceTracker()
        self._ols = IncrementalOLS()
        self._queue: list[tuple[int, int]] = []  # the GPU->CPU sample queue
        self._collected = 0
        self._model: LinearModel | None = None

    @property
    def collected(self) -> int:
        """Number of training pairs gathered so far."""
        return self._collected

    @property
    def sampling_done(self) -> bool:
        return self._collected >= self.sample_target

    @property
    def model(self) -> LinearModel | None:
        """Latest pipelined fit, or ``None`` before the first flush."""
        return self._model

    def observe(self, page: int, vtd: int | None) -> None:
        """Feed one coalesced access (GPU side).

        Every access during the sampling window is run through the exact
        reuse-distance tracker; accesses that have both a finite VTD and a
        finite RD become training pairs.  After the target is reached this
        becomes a no-op, so the steady-state access path pays nothing.
        """
        if self.sampling_done:
            return
        rd = self._rd_tracker.record(page)
        if vtd is None or rd is None:
            return
        self._queue.append((vtd, rd))
        self._collected += 1
        if self.telemetry is not None:
            self.telemetry.reuse_distance.observe(rd)
        if len(self._queue) >= self.batch_size or self.sampling_done:
            self._flush()

    def _flush(self) -> None:
        """Hand the queued samples to the "CPU thread" (OLS update)."""
        if not self._queue:
            return
        batch = len(self._queue)
        vtds = [float(v) for v, _ in self._queue]
        rds = [float(r) for _, r in self._queue]
        self._ols.update(vtds, rds)
        self._queue.clear()
        if self._ols.ready:
            self._model = self._ols.model()
        if self.telemetry is not None:
            args = {"samples": batch, "collected": self._collected}
            if self._model is not None:
                args["slope"] = self._model.m
                args["intercept"] = self._model.b
            self.telemetry.instant("sampler-flush", "reuse", **args)

    def predict_rrd(self, rvtd: int) -> float | None:
        """Project a remaining VTD to a remaining reuse distance (Eq. 3).

        Returns ``None`` while no model is available (the runtime then
        falls back to a default placement strategy, as the paper allows).
        Predictions are clamped at zero: a distance cannot be negative.
        """
        if self._model is None:
            return None
        return max(0.0, self._model.predict(float(rvtd)))
