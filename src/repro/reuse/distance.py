"""Exact reuse-distance computation via a Fenwick (binary indexed) tree.

The *reuse distance* of an access is the number of **distinct** pages
referenced since the previous access to the same page (Belady-relevant
"stack distance").  The paper's CPU helper thread computes these from
sampled accesses with "a tree-based method [13, 17]"; this module is that
method: keep each page's most recent access position in a Fenwick tree of
0/1 marks, so the number of distinct pages touched in an interval is a
prefix-sum difference.  Each access costs O(log n).
"""

from __future__ import annotations


class _FenwickTree:
    """1-indexed Fenwick tree of integers with O(log n) update/prefix-sum."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    @property
    def size(self) -> int:
        return self._size

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at 1-based ``index``."""
        if not 1 <= index <= self._size:
            raise IndexError(f"index {index} out of range 1..{self._size}")
        while index <= self._size:
            self._tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of values at positions 1..``index`` (0 gives 0)."""
        if index > self._size:
            index = self._size
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total


class ReuseDistanceTracker:
    """Streaming exact reuse distances over an unbounded access sequence.

    Example:
        >>> t = ReuseDistanceTracker()
        >>> [t.record(p) for p in [1, 2, 3, 1]]
        [None, None, None, 2]

    The final access to page 1 saw 2 distinct pages (2 and 3) since its
    previous access.  First-ever accesses return ``None`` (infinite RD).
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self) -> None:
        self._tree = _FenwickTree(self._INITIAL_CAPACITY)
        self._position = 0  # 1-based position of the most recent access
        self._last_pos: dict[int, int] = {}

    @property
    def accesses(self) -> int:
        """Total accesses recorded so far."""
        return self._position

    @property
    def distinct_pages(self) -> int:
        """Number of distinct pages seen so far."""
        return len(self._last_pos)

    def record(self, page: int) -> int | None:
        """Record an access to ``page`` and return its reuse distance.

        Returns ``None`` for a page's first access (cold miss / infinite
        distance).
        """
        self._position += 1
        if self._position > self._tree.size:
            self._grow()
        prev = self._last_pos.get(page)
        distance: int | None = None
        if prev is not None:
            # Distinct pages with last access strictly after ``prev``.
            distance = self._tree.prefix_sum(self._position - 1) - self._tree.prefix_sum(prev)
            self._tree.add(prev, -1)
        self._tree.add(self._position, 1)
        self._last_pos[page] = self._position
        return distance

    def _grow(self) -> None:
        """Double the tree, re-inserting each page's live position."""
        new = _FenwickTree(max(self._tree.size * 2, self._position))
        for pos in self._last_pos.values():
            new.add(pos, 1)
        self._tree = new


def reuse_distances(pages: list[int]) -> list[int | None]:
    """Reuse distance of each access in ``pages`` (``None`` = first access).

    Convenience wrapper over :class:`ReuseDistanceTracker` for offline
    analysis of whole traces.
    """
    tracker = ReuseDistanceTracker()
    return [tracker.record(p) for p in pages]
