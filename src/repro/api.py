"""Stable facade: one import surface for scripts and notebooks.

Everything a downstream user of the reproduction needs, re-exported from
one module so internal refactors never break callers:

>>> from repro.api import RuntimeConfig, make_runtime, run_experiment
>>> config = RuntimeConfig.paper_default(scale=1024)
>>> runtime = make_runtime(config, engine="vector")
>>> results = run_experiment("fig9", scale=1024)

``repro.api`` is the **stable** surface: the names here are covered by
the compatibility promise in ``docs/api.md``.  Everything else —
``repro.core``, ``repro.mem``, ``repro.sim``, ... — is internal and may
be reshaped without notice; prefer these re-exports over deep imports.

- Runtime: :class:`GMTRuntime`, :class:`BamRuntime`, :class:`HmmRuntime`,
  :class:`DragonRuntime`, :class:`RuntimeConfig` (alias of
  :class:`GMTConfig`), :class:`RunResult`, :class:`RuntimeStats`.
- Engine selection: :func:`make_runtime` (the one constructor every tool
  routes through), :func:`resolve_engine` /
  :func:`resolve_engine_reason`, :data:`ENGINE_NAMES` —
  ``"scalar"`` is the reference per-access loop, ``"vector"`` the
  byte-identical struct-of-arrays batch engine, ``"auto"`` picks vector
  unless something genuinely needs per-access observation
  (batch-capable telemetry does not demote; pass ``telemetry=True``).
  ``runtime.engine_resolution()`` reports the live ``(engine, reason)``
  pair after a run (see ``docs/performance.md``).
- Experiments: :class:`ExperimentSpec`, :func:`run_spec`,
  :func:`run_experiment`, :data:`EXPERIMENTS`, :class:`ExperimentResult`.
- Engine: :class:`Cell`, :class:`Engine`, :class:`ResultCache`,
  :func:`run_cells` — the parallel, cache-aware executor behind the CLI.
- Serving: :func:`serve` — one call from workload names to a
  :class:`~repro.serve.server.ServeResult` — and the open-loop surface:
  :func:`serve_open_loop`, :class:`OpenLoopServer`,
  :class:`OpenLoopConfig`, :class:`OpenLoopResult`,
  :class:`TenantPopulation` (zipf-skewed synthetic fleets), and
  :func:`make_arrival_process` (seeded Poisson/bursty arrival
  processes) — see ``docs/serving.md``.
- Conformance: :func:`run_conformance` (differential/metamorphic check
  over one trace, see ``gmt-check``), :func:`audit_runtime` /
  :func:`audit_stats` (post-run stats-identity audits, return
  :class:`Violation` lists), :func:`assert_conformant`,
  :class:`CheckReport`, :exc:`ConformanceError`.
- Observability: :func:`profile` / :class:`PhaseProfiler`
  (phase-attributed wall-clock profiling, see ``gmt-prof``),
  :class:`LatencyDigest` (streaming latency percentiles), and the run
  ledger (:func:`record_run`, :func:`read_ledger`, :func:`scan_trend`,
  see ``gmt-bench --trend``).
- Policy zoo: :class:`EvictionPolicy` (the strategy interface),
  :func:`make_eviction_policy` / :data:`EVICTION_POLICY_NAMES` (the
  registry), :class:`PartitionedPolicy` (per-tenant routing), and
  :class:`GovernorConfig` / :class:`MigrationGovernor` (migration
  admission control) — see ``docs/policies.md``.
"""

from __future__ import annotations

from repro.baselines import BamRuntime, DragonRuntime, HmmRuntime
from repro.check import (
    CheckReport,
    Violation,
    assert_conformant,
    audit_runtime,
    audit_stats,
    run_conformance,
)
from repro.core import (
    ENGINE_NAMES,
    GMTConfig,
    GMTRuntime,
    RunResult,
    RuntimeStats,
    make_runtime,
    resolve_engine,
    resolve_engine_reason,
)
from repro.core.config import DEFAULT_SCALE
from repro.experiments.engine import Cell, Engine, EngineStats, ResultCache, run_cells
from repro.experiments.harness import ExperimentResult, default_config
from repro.experiments.runner import EXPERIMENTS, get_spec, run_experiment
from repro.experiments.spec import CellResults, ExperimentSpec, run_spec
from repro.errors import ConformanceError
from repro.obs.digest import LatencyDigest
from repro.obs.ledger import read_ledger, record_run, scan_trend
from repro.policyzoo import (
    EVICTION_POLICY_NAMES,
    EvictionPolicy,
    GovernorConfig,
    MigrationGovernor,
    PartitionedPolicy,
    make_eviction_policy,
)
from repro.prof import PhaseProfiler, profile, profile_replay
from repro.serve import (
    OpenLoopConfig,
    OpenLoopResult,
    OpenLoopServer,
    TenantPopulation,
    make_arrival_process,
)
from repro.sim import PlatformModel

#: The configuration type under its role name.  ``RuntimeConfig`` is the
#: stable alias; :class:`GMTConfig` remains for paper-flavoured code.
RuntimeConfig = GMTConfig


def serve(
    tenants: list,
    config: GMTConfig | None = None,
    *,
    scale: int = DEFAULT_SCALE,
    discipline: str = "round-robin",
    quota=None,
    tier1_policy: str | None = None,
    tier2_policy: str | None = None,
    governor: GovernorConfig | None = None,
    solo_baselines: bool = True,
    engine: str | None = None,
    epoch: int = 1,
):
    """Serve a tenant mix on one shared hierarchy; returns a ``ServeResult``.

    Args:
        tenants: workload names (``["bfs", "pagerank"]``) or
            :class:`~repro.serve.stream.TenantSpec` entries.
        config: hierarchy configuration; defaults to
            ``default_config(scale)``.
        scale: byte-scale divisor used when ``config`` is omitted.
        discipline: interleaving discipline (``SCHEDULER_NAMES``).
        quota: optional :class:`~repro.serve.quota.QuotaConfig`.
        tier1_policy: default per-tenant Tier-1 eviction policy
            (:data:`EVICTION_POLICY_NAMES`); a per-tenant
            ``TenantSpec.tier1_policy`` overrides it.  Any non-``None``
            assignment switches the tier to partitioned (per-tenant)
            eviction structures.
        tier2_policy: same, for Tier-2.
        governor: optional :class:`GovernorConfig` enabling per-tenant
            migration admission control.
        solo_baselines: also replay each stream solo so per-tenant
            slowdowns and fairness are populated.
        engine: replay engine for the solo baselines
            (:data:`ENGINE_NAMES`); the shared multiplexed runtime always
            replays scalar.  Defaults to ``config.engine``.
        epoch: warps emitted per scheduling decision (1 = the
            historical per-warp interleave, byte-identical).
    """
    from repro.serve import TenantServer, build_tenants

    if config is None:
        config = default_config(scale)
    streams = build_tenants(list(tenants), config)
    server = TenantServer(
        config,
        streams,
        discipline=discipline,
        quota=quota,
        tier1_policy=tier1_policy,
        tier2_policy=tier2_policy,
        governor=governor,
        engine=engine,
        epoch=epoch,
    )
    return server.run(solo_baselines=solo_baselines)


def serve_open_loop(
    tenants: int,
    config: GMTConfig | None = None,
    *,
    scale: int = DEFAULT_SCALE,
    loop: OpenLoopConfig | None = None,
    seed: int = 0,
    workload: str = "keyvalue",
    slo_p50_ns: float | None = None,
    slo_p99_ns: float | None = None,
    quota=None,
):
    """Open-loop serve a zipf-skewed synthetic fleet; returns an
    :class:`OpenLoopResult`.

    Args:
        tenants: population size (each tenant gets a seeded synthetic
            workload with a zipf-skewed footprint and arrival share).
        config: hierarchy configuration; defaults to
            ``default_config(scale)``.
        scale: byte-scale divisor used when ``config`` is omitted.
        loop: the open-loop knobs (:class:`OpenLoopConfig`): arrival
            process and rate, request count, epoch, admission control.
        seed: population seed (workloads, footprints, weights).
        workload: synthetic workload registry name per tenant.
        slo_p50_ns / slo_p99_ns: per-tenant request-latency SLO targets.
        quota: optional :class:`~repro.serve.quota.QuotaConfig`.
    """
    if config is None:
        config = default_config(scale)
    population = TenantPopulation(
        tenants,
        seed=seed,
        workload=workload,
        slo_p50_ns=slo_p50_ns,
        slo_p99_ns=slo_p99_ns,
    )
    server = OpenLoopServer(config, population, loop, quota=quota)
    return server.run()


__all__ = [
    "BamRuntime",
    "Cell",
    "CellResults",
    "CheckReport",
    "ConformanceError",
    "DEFAULT_SCALE",
    "DragonRuntime",
    "ENGINE_NAMES",
    "EVICTION_POLICY_NAMES",
    "EXPERIMENTS",
    "Engine",
    "EngineStats",
    "EvictionPolicy",
    "ExperimentResult",
    "ExperimentSpec",
    "GMTConfig",
    "GMTRuntime",
    "GovernorConfig",
    "HmmRuntime",
    "LatencyDigest",
    "MigrationGovernor",
    "OpenLoopConfig",
    "OpenLoopResult",
    "OpenLoopServer",
    "PartitionedPolicy",
    "PhaseProfiler",
    "PlatformModel",
    "ResultCache",
    "RunResult",
    "RuntimeConfig",
    "RuntimeStats",
    "TenantPopulation",
    "Violation",
    "assert_conformant",
    "audit_runtime",
    "audit_stats",
    "default_config",
    "get_spec",
    "make_arrival_process",
    "make_eviction_policy",
    "make_runtime",
    "profile",
    "profile_replay",
    "read_ledger",
    "record_run",
    "resolve_engine",
    "resolve_engine_reason",
    "run_cells",
    "run_conformance",
    "run_experiment",
    "run_spec",
    "scan_trend",
    "serve",
    "serve_open_loop",
]
