"""Engine selection: one place that turns a config into a runtime.

Every tool (``gmt-sim``, ``gmt-serve``, ``gmt-bench``, ``gmt-check``, the
experiment harness) routes runtime construction through
:func:`make_runtime` instead of calling ``GMTRuntime(config)`` directly,
so ``GMTConfig.engine`` / ``--engine`` behave identically everywhere:

- ``"scalar"`` — the reference per-access Python loop;
- ``"vector"`` — the struct-of-arrays batch engine
  (:mod:`repro.core.vector`), byte-identical results, 10-50x faster on
  hit-dominated streams;
- ``"auto"`` — vector unless something genuinely needs per-access
  observation: a full flight recorder / event log / profiler
  (``recorder=True``), periodic conformance checks (``checks=True``),
  or a policy-zoo Tier-1 structure with no vector twin.  Batch-capable
  telemetry (windowed snapshots, latency digests, counter tracks,
  anomaly scans, sampled lifecycle streams — see :mod:`repro.obs.batch`)
  does *not* demote: pass ``telemetry=True`` and "auto" stays vector.
  A vector runtime that later gets per-access instruments attached
  silently replays scalar (see :meth:`~repro.core.vector.
  VectorEngineMixin._vector_ready`), so "auto" is always safe — the
  resolution is a fast-path choice, never a correctness one.

The *resolved* engine and the reason behind it are first-class:
:func:`resolve_engine_reason` returns both, :func:`make_runtime` stamps
them on the runtime, and every runtime exposes ``engine_resolution()``
— the surface the CLIs print and the ledger records.
"""

from __future__ import annotations

from repro.core.config import ENGINE_NAMES, GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError

__all__ = [
    "ENGINE_NAMES",
    "make_runtime",
    "resolve_engine",
    "resolve_engine_reason",
]


def resolve_engine_reason(
    engine: str | None,
    config: GMTConfig,
    *,
    recorder: bool = False,
    checks: bool = False,
    telemetry: bool = False,
) -> tuple[str, str]:
    """Resolve an engine request to ``("scalar"|"vector", reason)``.

    Args:
        engine: explicit request, or None to use ``config.engine``.
        config: the run's configuration.
        recorder: the caller will attach genuinely per-access
            instrumentation (full flight recorder / event log /
            profiler) — demotes "auto" to scalar.
        checks: the caller will enable periodic conformance checks —
            demotes "auto" to scalar.
        telemetry: the caller will attach *batch-capable* telemetry
            (windows/digests/counter tracks/anomaly scan/sampled
            lifecycle).  Informational only: "auto" stays vector, and
            the reason says so.
    """
    if engine is None:
        engine = config.engine
    if engine not in ENGINE_NAMES:
        raise ConfigError(f"engine must be one of {ENGINE_NAMES}, got {engine!r}")
    if engine != "auto":
        return engine, f"engine={engine!r} requested explicitly"
    if recorder:
        return "scalar", "auto: a per-access recorder will attach"
    if checks:
        return "scalar", "auto: periodic conformance checks audit every access"
    if config.tier1_eviction != "clock":
        return "scalar", (
            f"auto: tier1_eviction={config.tier1_eviction!r} has no vector twin"
        )
    if telemetry:
        return "vector", "auto: telemetry is batch-capable"
    return "vector", "auto: no per-access consumers"


def resolve_engine(
    engine: str | None,
    config: GMTConfig,
    *,
    recorder: bool = False,
    checks: bool = False,
    telemetry: bool = False,
) -> str:
    """:func:`resolve_engine_reason` without the reason."""
    return resolve_engine_reason(
        engine, config, recorder=recorder, checks=checks, telemetry=telemetry
    )[0]


def make_runtime(
    config: GMTConfig,
    *,
    runtime_cls: type[GMTRuntime] = GMTRuntime,
    engine: str | None = None,
    recorder: bool = False,
    checks: bool = False,
    telemetry: bool = False,
    **kwargs,
) -> GMTRuntime:
    """Construct a runtime honouring the engine selection surface.

    Args:
        config: the run's configuration (``config.engine`` is the default
            engine request).
        runtime_cls: runtime class to instantiate — :class:`GMTRuntime`
            or any subclass whose access path it inherits (the BaM / HMM /
            Dragon baselines, the oracle's policy-factory runs).
        engine: explicit ``"scalar"``/``"vector"``/``"auto"`` override of
            ``config.engine``.
        recorder / checks / telemetry: see :func:`resolve_engine_reason`
            — lets callers that are about to attach instrumentation
            steer "auto" up front instead of paying the vector engine's
            fallback.
        **kwargs: forwarded to ``runtime_cls`` (e.g. ``policy_factory``).
    """
    resolved, reason = resolve_engine_reason(
        engine, config, recorder=recorder, checks=checks, telemetry=telemetry
    )
    if resolved == "vector":
        from repro.core.vector import vector_variant

        runtime_cls = vector_variant(runtime_cls)
    runtime = runtime_cls(config, **kwargs)
    runtime.engine_reason = reason
    return runtime
