"""Engine selection: one place that turns a config into a runtime.

Every tool (``gmt-sim``, ``gmt-serve``, ``gmt-bench``, ``gmt-check``, the
experiment harness) routes runtime construction through
:func:`make_runtime` instead of calling ``GMTRuntime(config)`` directly,
so ``GMTConfig.engine`` / ``--engine`` behave identically everywhere:

- ``"scalar"`` — the reference per-access Python loop;
- ``"vector"`` — the struct-of-arrays batch engine
  (:mod:`repro.core.vector`), byte-identical results, 10-50x faster on
  hit-dominated streams;
- ``"auto"`` — vector exactly when nothing needs per-access observation:
  no flight recorder, no periodic conformance checks, and a plain clock
  Tier-1 (the policy-zoo structures have no vector twin).  A vector
  runtime that later gets instruments attached silently replays scalar
  (see :meth:`~repro.core.vector.VectorEngineMixin._vector_ready`), so
  "auto" is always safe — the resolution is a fast-path choice, never a
  correctness one.
"""

from __future__ import annotations

from repro.core.config import ENGINE_NAMES, GMTConfig
from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError

__all__ = ["ENGINE_NAMES", "make_runtime", "resolve_engine"]


def resolve_engine(
    engine: str | None,
    config: GMTConfig,
    *,
    recorder: bool = False,
    checks: bool = False,
) -> str:
    """Resolve an engine request to ``"scalar"`` or ``"vector"``.

    Args:
        engine: explicit request, or None to use ``config.engine``.
        config: the run's configuration.
        recorder: the caller will attach per-access instrumentation
            (flight recorder / telemetry / event log / profiler).
        checks: the caller will enable periodic conformance checks.
    """
    if engine is None:
        engine = config.engine
    if engine not in ENGINE_NAMES:
        raise ConfigError(f"engine must be one of {ENGINE_NAMES}, got {engine!r}")
    if engine != "auto":
        return engine
    if recorder or checks:
        return "scalar"
    if config.tier1_eviction != "clock":
        return "scalar"
    return "vector"


def make_runtime(
    config: GMTConfig,
    *,
    runtime_cls: type[GMTRuntime] = GMTRuntime,
    engine: str | None = None,
    recorder: bool = False,
    checks: bool = False,
    **kwargs,
) -> GMTRuntime:
    """Construct a runtime honouring the engine selection surface.

    Args:
        config: the run's configuration (``config.engine`` is the default
            engine request).
        runtime_cls: runtime class to instantiate — :class:`GMTRuntime`
            or any subclass whose access path it inherits (the BaM / HMM /
            Dragon baselines, the oracle's policy-factory runs).
        engine: explicit ``"scalar"``/``"vector"``/``"auto"`` override of
            ``config.engine``.
        recorder / checks: see :func:`resolve_engine` — lets callers that
            are about to attach instrumentation steer "auto" to scalar up
            front instead of paying the vector engine's fallback.
        **kwargs: forwarded to ``runtime_cls`` (e.g. ``policy_factory``).
    """
    resolved = resolve_engine(engine, config, recorder=recorder, checks=checks)
    if resolved == "vector":
        from repro.core.vector import vector_variant

        runtime_cls = vector_variant(runtime_cls)
    return runtime_cls(config, **kwargs)
