"""Runtime counters — every number the paper's evaluation section reports.

One :class:`RuntimeStats` instance accompanies each run.  The raw counters
map to the paper's figures as follows:

- Figure 8(b): ``ssd_page_reads``/``ssd_page_writes`` (I/O vs BaM);
- Figure 9: ``resolved_predictions``/``correct_predictions`` (accuracy);
- Figure 10(a): ``t2_wasteful_lookups`` over ``t1_misses``;
- Figure 10(b): ``t2_placements`` and ``t2_fetches`` over BaM transfers.

The export surface is built on :mod:`repro.obs`: every scalar field is a
counter, every declared rate property a gauge.  :meth:`as_dict` and
:meth:`bind_registry` are both *derived* from the dataclass fields plus
:data:`EXPORTED_PROPERTIES`, so adding a counter cannot silently fall out
of reports again (tests assert the parity).  Storage stays plain ``int``
fields — the hot path's ``stats.t1_hits += 1`` is untouched, and the
registry reads the fields only at export time (pull model)."""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class RuntimeStats:
    """Counters accumulated by a runtime over one trace replay."""

    # Unannotated class constants — invisible to @dataclass.
    #: Fields excluded from the scalar export (non-scalar structures).
    NON_SCALAR_FIELDS = frozenset({"confusion"})
    #: Rate/derived properties included in every export, with the fields.
    EXPORTED_PROPERTIES = (
        "t1_hit_rate",
        "t2_hit_rate",
        "wasteful_lookup_fraction",
        "prediction_accuracy",
        "ssd_page_ios",
        "prefetch_accuracy",
        "migration_throttled",
    )
    #: Help strings for the figure-critical metrics (others export bare).
    METRIC_HELP = {
        "t1_hits": "Coalesced accesses served from GPU memory",
        "t1_misses": "Coalesced accesses that faulted out of Tier-1",
        "t2_hits": "Tier-2 lookups that found the page (useful lookups)",
        "t2_lookups": "Tier-2 page-table probes on the miss path",
        "t2_wasteful_lookups": "Tier-2 probes that fell through to the SSD (Fig. 10a)",
        "ssd_page_reads": "NVMe page reads (Fig. 8b traffic)",
        "ssd_page_writes": "NVMe page writes (Fig. 8b traffic)",
        "t1_hit_rate": "Fraction of coalesced accesses served from GPU memory",
        "t2_hit_rate": "Fraction of Tier-2 lookups that found the page",
        "prediction_accuracy": "Resolved Markov predictions naming the correct tier (Fig. 9)",
        "ssd_page_ios": "Total NVMe page commands (reads + writes)",
        "quota_evictions": "Tier-1 evictions forced by a tenant frame quota (repro.serve)",
        "t2_quota_denials": "Tier-2 placements denied by per-tenant admission control",
        "t2_clean_evictions": "Tier-2 evictions of clean pages (no writeback issued)",
        "promotions_throttled": "Tier-2 promotions stalled by the migration governor",
        "demotions_throttled": "Tier-1 demotions denied a Tier-2 frame by the migration governor",
        "migration_throttled": "Tier migrations throttled by the governor (promotions + demotions)",
    }

    # --- access stream ----------------------------------------------------
    warp_instructions: int = 0
    coalesced_accesses: int = 0

    # --- Tier-1 -------------------------------------------------------------
    t1_hits: int = 0
    t1_misses: int = 0
    t1_evictions: int = 0
    clock_retentions: int = 0          # short-reuse "second chance" rounds
    retention_overrides: int = 0       # retry bound hit; forced eviction

    # --- Tier-2 -------------------------------------------------------------
    t2_lookups: int = 0
    t2_hits: int = 0                   # "useful" lookups
    t2_wasteful_lookups: int = 0       # lookup missed; fell through to SSD
    t2_placements: int = 0             # Tier-1 evictions placed into Tier-2
    t2_fetches: int = 0                # Tier-2 pages promoted to Tier-1
    t2_evictions: int = 0              # FIFO/clock evictions out of Tier-2
    t2_clean_evictions: int = 0        # Tier-2 evictions dropped without a writeback
    t2_full_bypasses: int = 0          # GMT-Reuse: no free slot -> bypass
    forced_t2_placements: int = 0      # 80% Tier-3-bias heuristic overrides

    # --- multi-tenant serving (repro.serve; zero outside a served run) -------
    quota_evictions: int = 0           # Tier-1 evictions forced by a tenant quota
    t2_quota_denials: int = 0          # Tier-2 placements denied by admission
    promotions_throttled: int = 0      # governor-stalled Tier-2 -> Tier-1 fetches
    demotions_throttled: int = 0       # governor-denied Tier-1 -> Tier-2 placements

    # --- Tier-3 / SSD ---------------------------------------------------------
    ssd_page_reads: int = 0
    ssd_page_writes: int = 0
    clean_discards: int = 0            # evictions dropped without any I/O

    # --- prefetching (optional, config.prefetch_degree > 0) ------------------
    prefetches_issued: int = 0
    prefetch_hits: int = 0             # prefetched page later demand-hit
    prefetch_wasted: int = 0           # prefetched page evicted untouched

    # --- GMT-Reuse prediction bookkeeping -----------------------------------
    predictions_made: int = 0          # Markov predictions used at eviction
    fallback_placements: int = 0       # no history -> default strategy
    resolved_predictions: int = 0      # prediction later checked vs truth
    correct_predictions: int = 0
    #: (predicted class name, actual class name) -> count.
    confusion: dict[tuple[str, str], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def t1_hit_rate(self) -> float:
        """Fraction of coalesced accesses served from GPU memory."""
        total = self.t1_hits + self.t1_misses
        return self.t1_hits / total if total else 0.0

    @property
    def t2_hit_rate(self) -> float:
        """Fraction of Tier-2 lookups that found the page."""
        return self.t2_hits / self.t2_lookups if self.t2_lookups else 0.0

    @property
    def wasteful_lookup_fraction(self) -> float:
        """Figure 10(a): wasteful Tier-2 lookups as a fraction of Tier-1
        misses."""
        return self.t2_wasteful_lookups / self.t1_misses if self.t1_misses else 0.0

    @property
    def prediction_accuracy(self) -> float:
        """Figure 9: resolved Markov predictions that named the correct tier."""
        if not self.resolved_predictions:
            return 0.0
        return self.correct_predictions / self.resolved_predictions

    @property
    def ssd_page_ios(self) -> int:
        return self.ssd_page_reads + self.ssd_page_writes

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that were demand-hit."""
        if not self.prefetches_issued:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued

    @property
    def migration_throttled(self) -> int:
        """Tier migrations the governor throttled, in either direction
        (exported as ``gmt_migration_throttled``)."""
        return self.promotions_throttled + self.demotions_throttled

    def record_prediction_outcome(self, predicted: str, actual: str) -> None:
        """Account one resolved prediction (called when a page returns to
        Tier-1 and its previous eviction's correct tier becomes known)."""
        self.resolved_predictions += 1
        if predicted == actual:
            self.correct_predictions += 1
        key = (predicted, actual)
        self.confusion[key] = self.confusion.get(key, 0) + 1

    def io_bytes(self, page_size: int) -> int:
        """Total SSD traffic in bytes (Figure 8(b)'s metric)."""
        return self.ssd_page_ios * page_size

    # ------------------------------------------------------------------
    # export surface (derived — counters cannot silently drop out)
    # ------------------------------------------------------------------
    @classmethod
    def counter_names(cls) -> tuple[str, ...]:
        """Every scalar counter field, in declaration order."""
        return tuple(
            f.name for f in fields(cls) if f.name not in cls.NON_SCALAR_FIELDS
        )

    def as_dict(self) -> dict[str, float]:
        """Flat scalar snapshot for reports and experiment tables: every
        counter field plus every declared rate property."""
        out: dict[str, float] = {name: getattr(self, name) for name in self.counter_names()}
        for name in self.EXPORTED_PROPERTIES:
            out[name] = getattr(self, name)
        return out

    def bind_registry(self, registry, prefix: str = "gmt_"):
        """Register every counter field and rate property in ``registry``.

        Counters are *bound* (the registry reads this object's fields at
        export time — the hot-path increments stay plain attribute
        writes); properties become callback gauges.  Returns ``registry``
        (a new :class:`~repro.obs.metrics.MetricsRegistry` when None).
        """
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        for name in self.counter_names():
            registry.bind_counter(prefix + name, self, name,
                                  help=self.METRIC_HELP.get(name, ""))
        for name in self.EXPORTED_PROPERTIES:
            registry.gauge(
                prefix + name,
                help=self.METRIC_HELP.get(name, ""),
                fn=lambda s=self, n=name: getattr(s, n),
            )
        return registry
