"""Runtime counters — every number the paper's evaluation section reports.

One :class:`RuntimeStats` instance accompanies each run.  The raw counters
map to the paper's figures as follows:

- Figure 8(b): ``ssd_page_reads``/``ssd_page_writes`` (I/O vs BaM);
- Figure 9: ``resolved_predictions``/``correct_predictions`` (accuracy);
- Figure 10(a): ``t2_wasteful_lookups`` over ``t1_misses``;
- Figure 10(b): ``t2_placements`` and ``t2_fetches`` over BaM transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RuntimeStats:
    """Counters accumulated by a runtime over one trace replay."""

    # --- access stream ----------------------------------------------------
    warp_instructions: int = 0
    coalesced_accesses: int = 0

    # --- Tier-1 -------------------------------------------------------------
    t1_hits: int = 0
    t1_misses: int = 0
    t1_evictions: int = 0
    clock_retentions: int = 0          # short-reuse "second chance" rounds
    retention_overrides: int = 0       # retry bound hit; forced eviction

    # --- Tier-2 -------------------------------------------------------------
    t2_lookups: int = 0
    t2_hits: int = 0                   # "useful" lookups
    t2_wasteful_lookups: int = 0       # lookup missed; fell through to SSD
    t2_placements: int = 0             # Tier-1 evictions placed into Tier-2
    t2_fetches: int = 0                # Tier-2 pages promoted to Tier-1
    t2_evictions: int = 0              # FIFO/clock evictions out of Tier-2
    t2_full_bypasses: int = 0          # GMT-Reuse: no free slot -> bypass
    forced_t2_placements: int = 0      # 80% Tier-3-bias heuristic overrides

    # --- Tier-3 / SSD ---------------------------------------------------------
    ssd_page_reads: int = 0
    ssd_page_writes: int = 0
    clean_discards: int = 0            # evictions dropped without any I/O

    # --- prefetching (optional, config.prefetch_degree > 0) ------------------
    prefetches_issued: int = 0
    prefetch_hits: int = 0             # prefetched page later demand-hit
    prefetch_wasted: int = 0           # prefetched page evicted untouched

    # --- GMT-Reuse prediction bookkeeping -----------------------------------
    predictions_made: int = 0          # Markov predictions used at eviction
    fallback_placements: int = 0       # no history -> default strategy
    resolved_predictions: int = 0      # prediction later checked vs truth
    correct_predictions: int = 0
    #: (predicted class name, actual class name) -> count.
    confusion: dict[tuple[str, str], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def t1_hit_rate(self) -> float:
        """Fraction of coalesced accesses served from GPU memory."""
        total = self.t1_hits + self.t1_misses
        return self.t1_hits / total if total else 0.0

    @property
    def t2_hit_rate(self) -> float:
        """Fraction of Tier-2 lookups that found the page."""
        return self.t2_hits / self.t2_lookups if self.t2_lookups else 0.0

    @property
    def wasteful_lookup_fraction(self) -> float:
        """Figure 10(a): wasteful Tier-2 lookups as a fraction of Tier-1
        misses."""
        return self.t2_wasteful_lookups / self.t1_misses if self.t1_misses else 0.0

    @property
    def prediction_accuracy(self) -> float:
        """Figure 9: resolved Markov predictions that named the correct tier."""
        if not self.resolved_predictions:
            return 0.0
        return self.correct_predictions / self.resolved_predictions

    @property
    def ssd_page_ios(self) -> int:
        return self.ssd_page_reads + self.ssd_page_writes

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that were demand-hit."""
        if not self.prefetches_issued:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued

    def record_prediction_outcome(self, predicted: str, actual: str) -> None:
        """Account one resolved prediction (called when a page returns to
        Tier-1 and its previous eviction's correct tier becomes known)."""
        self.resolved_predictions += 1
        if predicted == actual:
            self.correct_predictions += 1
        key = (predicted, actual)
        self.confusion[key] = self.confusion.get(key, 0) + 1

    def io_bytes(self, page_size: int) -> int:
        """Total SSD traffic in bytes (Figure 8(b)'s metric)."""
        return self.ssd_page_ios * page_size

    def as_dict(self) -> dict[str, float]:
        """Flat scalar snapshot for reports and experiment tables."""
        return {
            "warp_instructions": self.warp_instructions,
            "coalesced_accesses": self.coalesced_accesses,
            "t1_hits": self.t1_hits,
            "t1_misses": self.t1_misses,
            "t1_hit_rate": self.t1_hit_rate,
            "t1_evictions": self.t1_evictions,
            "clock_retentions": self.clock_retentions,
            "t2_lookups": self.t2_lookups,
            "t2_hits": self.t2_hits,
            "t2_hit_rate": self.t2_hit_rate,
            "t2_wasteful_lookups": self.t2_wasteful_lookups,
            "wasteful_lookup_fraction": self.wasteful_lookup_fraction,
            "t2_placements": self.t2_placements,
            "t2_fetches": self.t2_fetches,
            "t2_evictions": self.t2_evictions,
            "t2_full_bypasses": self.t2_full_bypasses,
            "forced_t2_placements": self.forced_t2_placements,
            "ssd_page_reads": self.ssd_page_reads,
            "ssd_page_writes": self.ssd_page_writes,
            "clean_discards": self.clean_discards,
            "prefetches_issued": self.prefetches_issued,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_wasted": self.prefetch_wasted,
            "predictions_made": self.predictions_made,
            "fallback_placements": self.fallback_placements,
            "prediction_accuracy": self.prediction_accuracy,
        }
