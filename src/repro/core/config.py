"""Configuration for GMT runtimes and experiments.

The paper's default geometry (section 3.1): Tier-1 capped at 16 GB, Tier-2
4 x larger, over-subscription factor 2 (working set = 2 x (Tier-1 +
Tier-2)).  Capacities here are expressed in 64 KB *page frames* so any
scale — including the paper's full sizes — is one constructor call away;
:meth:`GMTConfig.paper_default` applies the default 1/256 byte scale that
keeps pure-Python runs tractable (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.sim.latency import PlatformModel
from repro.units import GiB, PAGE_SIZE

#: Default byte-scale between the paper's platform and our simulation.
DEFAULT_SCALE = 256

#: Paper section 3.1 geometry.
PAPER_TIER1_BYTES = 16 * GiB
PAPER_TIER2_RATIO = 4
PAPER_OVERSUBSCRIPTION = 2.0

_POLICY_NAMES = ("tier-order", "random", "reuse", "dueling")

#: Public alias — the registry of Tier-2-placement policy names
#: (``GMTConfig.policy``).  CLIs derive their choices from this.
POLICY_NAMES = _POLICY_NAMES

#: Replay-engine names (``GMTConfig.engine`` / every ``--engine`` flag).
#: "scalar" is the reference per-access loop, "vector" the SoA batch
#: engine (:mod:`repro.core.vector`), and "auto" resolves per run site:
#: vector unless something genuinely per-access is requested (a full
#: flight recorder / event log / profiler, periodic checks, or a
#: policy-zoo Tier-1 structure).  Batch-capable telemetry — windowed
#: snapshots, latency digests, counter tracks, anomaly scans, sampled
#: lifecycle streams (:mod:`repro.obs.batch`) — stays on the vector
#: engine.
ENGINE_NAMES = ("scalar", "vector", "auto")


@dataclass(frozen=True)
class GMTConfig:
    """Everything a :class:`~repro.core.runtime.GMTRuntime` needs.

    Attributes:
        tier1_frames: GPU-memory capacity in 64 KB page frames.
        tier2_frames: host-memory capacity in frames (0 disables Tier-2,
            which degenerates GMT into a BaM-like 2-tier system).
        page_size: bytes per page (paper: 64 KB, the UVM default).
        policy: ``"tier-order"`` | ``"random"`` | ``"reuse"``.
        transfer_engine: engine spec for Tier-1<->Tier-2 movement (see
            :func:`repro.sim.transfer.make_engine`); paper uses Hybrid-32T.
        transfer_batch_pages: nominal number of concurrent Tier-1<->Tier-2
            page transfers over which engine overheads amortise (demand
            misses arrive in bursts across warps).
        platform: latency/bandwidth constant sheet.
        seed: RNG seed (GMT-Random's placement coin and any tie-breaks).
        sample_target / sample_batch: GMT-Reuse sampling window and the
            pipelined flush cadence (paper: 10 000 per batch).
        tier3_bias_threshold / tier3_bias_window: section 2.2's heuristic —
            if more than ``threshold`` of the last ``window`` evictions were
            predicted Tier-3, force the current one into Tier-2.
        max_clock_retries: bound on consecutive "short-reuse, retain in
            Tier-1" clock rounds per eviction, guaranteeing progress.
    """

    tier1_frames: int
    tier2_frames: int
    page_size: int = PAGE_SIZE
    policy: str = "reuse"
    transfer_engine: str = "hybrid-32t"
    transfer_batch_pages: int = 16
    platform: PlatformModel = field(default_factory=PlatformModel)
    seed: int = 0x6D7   # "GMT"
    sample_target: int = 20_000
    sample_batch: int = 10_000
    tier3_bias_threshold: float = 0.8
    tier3_bias_window: int = 64
    max_clock_retries: int = 8
    #: GMT-Reuse's history predictor: "markov" (the paper's 2-level /
    #: 3-state chain, Fig. 5) or "last" (1-level ablation).
    reuse_predictor: str = "markov"
    #: Disable section 2.2's 80% Tier-3-bias heuristic (ablation).
    tier3_bias_enabled: bool = True
    #: Section 5 future work: "asynchronous mechanisms to perform these
    #: GPU orchestrations ... in the background".  When True, eviction
    #: work (Tier-2 placement, writebacks) is taken off the demand-miss
    #: critical path; bandwidth is still accounted.
    async_evictions: bool = False
    #: Sequential pages prefetched into Tier-1 alongside each SSD demand
    #: miss (0 disables).  Paper section 2: "placement options can also be
    #: considered in conjunction with prefetching of pages"; this is the
    #: UVM-style sequential prefetcher at 64 KB granularity.
    prefetch_degree: int = 0
    #: Execution-time model: "bottleneck" (roofline max of pipeline terms,
    #: fast, the default) or "queueing" (explicit virtual-time service
    #: network, :mod:`repro.sim.queueing`).
    time_model: str = "bottleneck"
    #: Number of pages the workload's address space actually spans (the
    #: workload's ``footprint_pages``).  When set, the sequential
    #: prefetcher clamps its window to it — without the bound it would
    #: fabricate page-table entries and SSD reads for pages the trace can
    #: never touch.  None (the default) leaves the prefetcher unbounded,
    #: matching runs whose page-id space is open-ended (e.g. the
    #: namespaced multi-tenant serving layer).
    footprint_pages: int | None = None
    #: Tier-1 eviction policy from the :mod:`repro.policyzoo` registry
    #: ("clock", "s3fifo", "mglru", "lfu", "mru", "lhd").  "clock" is
    #: the paper's GPU-tier replacement and the default.
    tier1_eviction: str = "clock"
    #: Tier-2 eviction policy.  None (the default) preserves the
    #: historical derivation: "clock" when the placement policy is
    #: GMT-TierOrder, plain "fifo" otherwise (paper section 2.2).
    tier2_eviction: str | None = None
    #: Replay engine: "scalar" | "vector" | "auto" (see
    #: :data:`ENGINE_NAMES` and :func:`repro.core.factory.make_runtime`).
    #: Both engines produce byte-identical results; "auto" picks vector
    #: whenever per-access instrumentation is off.
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.tier1_frames <= 0:
            raise ConfigError(f"tier1_frames must be positive, got {self.tier1_frames}")
        if self.tier2_frames < 0:
            raise ConfigError(f"tier2_frames must be >= 0, got {self.tier2_frames}")
        if self.page_size <= 0:
            raise ConfigError(f"page_size must be positive, got {self.page_size}")
        if self.policy not in _POLICY_NAMES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; expected one of {_POLICY_NAMES}"
            )
        if self.transfer_batch_pages < 1:
            raise ConfigError("transfer_batch_pages must be >= 1")
        if not 0.0 < self.tier3_bias_threshold <= 1.0:
            raise ConfigError("tier3_bias_threshold must be in (0, 1]")
        if self.tier3_bias_window < 1:
            raise ConfigError("tier3_bias_window must be >= 1")
        if self.max_clock_retries < 0:
            raise ConfigError("max_clock_retries must be >= 0")
        if self.sample_target < 1 or self.sample_batch < 1:
            raise ConfigError("sampling parameters must be positive")
        if self.prefetch_degree < 0:
            raise ConfigError(f"prefetch_degree must be >= 0: {self.prefetch_degree}")
        if self.footprint_pages is not None and self.footprint_pages <= 0:
            raise ConfigError(
                f"footprint_pages must be positive (or None), got "
                f"{self.footprint_pages}"
            )
        if self.time_model not in ("bottleneck", "queueing"):
            raise ConfigError(
                f"time_model must be 'bottleneck' or 'queueing', got "
                f"{self.time_model!r}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ConfigError(
                f"engine must be one of {ENGINE_NAMES}, got {self.engine!r}"
            )
        if self.reuse_predictor not in ("markov", "last"):
            raise ConfigError(
                f"reuse_predictor must be 'markov' or 'last', got "
                f"{self.reuse_predictor!r}"
            )
        # Imported lazily: policyzoo depends on repro.mem, not on this
        # module, so the late import avoids any cycle at import time.
        from repro.policyzoo.registry import validate_policy_name

        validate_policy_name(self.tier1_eviction)
        if self.tier2_eviction is not None:
            validate_policy_name(self.tier2_eviction)

    # ------------------------------------------------------------------
    @property
    def total_memory_frames(self) -> int:
        """Tier-1 + Tier-2 capacity — Eq. 1's medium/long boundary."""
        return self.tier1_frames + self.tier2_frames

    def working_set_frames(self, oversubscription: float = PAPER_OVERSUBSCRIPTION) -> int:
        """Working-set size (pages) for a given over-subscription factor,
        per the paper's definition: WS / (Tier-1 + Tier-2)."""
        if oversubscription <= 0:
            raise ConfigError(f"oversubscription must be positive: {oversubscription}")
        return int(round(self.total_memory_frames * oversubscription))

    def with_policy(self, policy: str) -> GMTConfig:
        """Same geometry, different policy (fig. 8's three-way comparison)."""
        return replace(self, policy=policy)

    # ------------------------------------------------------------------
    @classmethod
    def paper_default(
        cls,
        scale: int = DEFAULT_SCALE,
        tier2_ratio: int = PAPER_TIER2_RATIO,
        tier1_bytes: int = PAPER_TIER1_BYTES,
        **overrides,
    ) -> GMTConfig:
        """The section 3.1 configuration, byte-scaled by ``1/scale``.

        ``paper_default()`` gives Tier-1 = 1 024 frames ("16 GB"/256) and
        Tier-2 = 4 096 frames ("64 GB"/256).  ``scale=1`` reproduces the
        paper's raw capacities.
        """
        if scale < 1:
            raise ConfigError(f"scale must be >= 1, got {scale}")
        if tier2_ratio < 0:
            raise ConfigError(f"tier2_ratio must be >= 0, got {tier2_ratio}")
        tier1_frames = max(1, tier1_bytes // (PAGE_SIZE * scale))
        return cls(
            tier1_frames=tier1_frames,
            tier2_frames=tier1_frames * tier2_ratio,
            **overrides,
        )
