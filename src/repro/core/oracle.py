"""Belady-style oracle placement: GMT-Reuse with perfect future knowledge.

GMT-Reuse *approximates* Belady's OPT by predicting each victim's
remaining reuse distance (paper section 2.1.3).  The oracle here removes
both sources of error in that approximation:

- the **remaining VTD** of every victim is read from the future of the
  trace instead of being predicted by the Markov chain;
- the **VTD -> RD map** (Eq. 2) is fit offline over the *entire* trace
  instead of a sampled prefix.

Placement then proceeds through exactly the same Eq. 1 classification,
the same tiers, and the same 80 % Tier-3-bias heuristic, so the gap
between GMT-Reuse and :func:`run_with_oracle` is precisely the cost of
*prediction error* — the natural upper bound to report next to Figure 8.

This requires the trace twice (one pass to index future accesses, one to
run), which is why it lives outside the online policy registry.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections import defaultdict

from repro.core.config import GMTConfig
from repro.core.placement import PlacementDecision, Tier3BiasHeuristic
from repro.core.policies import PlacementPlan, PlacementPolicy
from repro.core.runtime import RunResult
from repro.core.stats import RuntimeStats
from repro.errors import TraceError
from repro.mem.page import PageState
from repro.reuse.classifier import ReuseClass, RRDClassifier
from repro.reuse.regression import IncrementalOLS, LinearModel
from repro.reuse.vtd import VirtualTimestampClock
from repro.workloads.trace import Workload


class FutureReuseIndex:
    """Positions of every page's accesses, for next-access queries.

    Positions are in coalesced-access order, i.e. the same virtual time
    the runtime's :class:`VirtualTimestampClock` counts (1-based).
    """

    def __init__(self, workload: Workload) -> None:
        self._positions: dict[int, list[int]] = defaultdict(list)
        position = 0
        for page in workload.coalesced_pages():
            position += 1
            self._positions[page].append(position)
        if position == 0:
            raise TraceError("cannot build a future index over an empty trace")
        self.trace_length = position

    def next_access_after(self, page: int, now: int) -> int | None:
        """Virtual time of ``page``'s first access strictly after ``now``."""
        positions = self._positions.get(page)
        if not positions:
            return None
        idx = bisect_right(positions, now)
        if idx == len(positions):
            return None
        return positions[idx]


def fit_global_vtd_model(workload: Workload) -> LinearModel | None:
    """Offline Eq. 2 fit (RD = m * VTD + b) over the whole trace.

    Returns ``None`` when the trace has no reuse at all (then every
    eviction is LONG by definition).
    """
    from repro.reuse.distance import ReuseDistanceTracker

    tracker = ReuseDistanceTracker()
    last_ts: dict[int, int] = {}
    ols = IncrementalOLS()
    now = 0
    for page in workload.coalesced_pages():
        now += 1
        rd = tracker.record(page)
        prev = last_ts.get(page)
        last_ts[page] = now
        if rd is None or prev is None:
            continue
        ols.add(float(now - prev), float(rd))
    if not ols.ready:
        return None
    return ols.model()


class OraclePolicy(PlacementPolicy):
    """Eq. 1 placement driven by exact future RVTDs (see module docs)."""

    name = "oracle"
    tier2_evicts_on_full = True

    def __init__(
        self,
        config: GMTConfig,
        stats: RuntimeStats,
        vts: VirtualTimestampClock,
        index: FutureReuseIndex,
        model: LinearModel | None,
    ) -> None:
        super().__init__(config, stats)
        self._vts = vts
        self._index = index
        self._model = model
        self.classifier = RRDClassifier(config.tier1_frames, config.tier2_frames)
        self.heuristic = Tier3BiasHeuristic(
            threshold=config.tier3_bias_threshold, window=config.tier3_bias_window
        )
        self._heuristic_enabled = config.tier3_bias_enabled

    def choose(self, state: PageState) -> PlacementPlan:
        now = self._vts.now
        next_access = self._index.next_access_after(state.page, now)
        if next_access is None or self._model is None:
            actual = ReuseClass.LONG
        else:
            rrd = max(0.0, self._model.predict(float(next_access - now)))
            actual = self.classifier.classify(rrd)
        self.stats.predictions_made += 1
        self.heuristic.record(actual)
        decision = PlacementDecision.for_class(actual)
        if (
            self._heuristic_enabled
            and decision is PlacementDecision.BYPASS_TIER3
            and self.heuristic.should_force_tier2()
        ):
            return PlacementPlan(
                decision=PlacementDecision.PLACE_TIER2,
                predicted_class=actual,
                forced_tier2=True,
            )
        return PlacementPlan(decision=decision, predicted_class=actual)


def run_with_oracle(
    config: GMTConfig, workload: Workload, engine: str | None = None
) -> RunResult:
    """Replay ``workload`` under oracle placement; returns the run result.

    The runtime is a stock :class:`GMTRuntime` — only the policy differs —
    so results are directly comparable with the online policies.  Engine
    selection goes through :func:`repro.core.factory.make_runtime` like
    every other replay (the oracle policy keeps the default silent
    ``on_access``, so its hits batch).
    """
    from repro.core.factory import make_runtime

    index = FutureReuseIndex(workload)
    model = fit_global_vtd_model(workload)

    def factory(
        cfg: GMTConfig,
        stats: RuntimeStats,
        vts: VirtualTimestampClock,
        rng: random.Random,
    ) -> OraclePolicy:
        return OraclePolicy(cfg, stats, vts, index, model)

    runtime = make_runtime(config, engine=engine, policy_factory=factory)
    runtime.name = "GMT-oracle"
    result = runtime.run(workload)
    result.runtime_name = "GMT-oracle"
    return result
