"""GMT's core: the GPU-orchestrated 3-tier runtime and its policies.

- :mod:`repro.core.config` — :class:`GMTConfig`, including the paper's
  default geometry (Tier-2 = 4 x Tier-1, over-subscription = 2);
- :mod:`repro.core.stats` — every counter the evaluation section reports;
- :mod:`repro.core.placement` — placement decisions + the 80 % Tier-3-bias
  heuristic of section 2.2;
- :mod:`repro.core.policies` — GMT-TierOrder, GMT-Random, GMT-Reuse;
- :mod:`repro.core.runtime` — :class:`GMTRuntime`, the demand-miss /
  lookup / eviction pipeline of section 2.
"""

from repro.core.config import ENGINE_NAMES, GMTConfig
from repro.core.factory import make_runtime, resolve_engine, resolve_engine_reason
from repro.core.placement import PlacementDecision, Tier3BiasHeuristic
from repro.core.policies import (
    PlacementPolicy,
    RandomPolicy,
    ReusePolicy,
    TierOrderPolicy,
    make_policy,
)
from repro.core.runtime import GMTRuntime, RunResult
from repro.core.stats import RuntimeStats

__all__ = [
    "ENGINE_NAMES",
    "GMTConfig",
    "GMTRuntime",
    "make_runtime",
    "resolve_engine",
    "resolve_engine_reason",
    "PlacementDecision",
    "PlacementPolicy",
    "RandomPolicy",
    "ReusePolicy",
    "RunResult",
    "RuntimeStats",
    "Tier3BiasHeuristic",
    "TierOrderPolicy",
    "make_policy",
]
