"""Windowed statistics timeline — watch a runtime warm up.

GMT-Reuse's behaviour is phased: a cold sampling window, a Markov-history
build-up, then steady state (section 2.1.3's "default strategy until we
collect enough samples").  End-of-run counters average those phases away;
a :class:`StatsTimeline` snapshots the counters every N coalesced accesses
so the phases become visible:

>>> runtime = GMTRuntime(config)
>>> timeline = StatsTimeline(runtime, window=10_000)
>>> for warp in workload:
...     runtime.access_warp(warp)
...     timeline.maybe_snapshot()
>>> for w in timeline.windows():
...     print(w.index, w.t2_hit_rate, w.prediction_coverage)

Windows report *deltas* (what happened inside the window), not cumulative
values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runtime import GMTRuntime
from repro.errors import ConfigError


@dataclass(frozen=True)
class StatsWindow:
    """Counter deltas over one window of coalesced accesses."""

    index: int
    accesses: int
    t1_hits: int
    t1_misses: int
    t2_hits: int
    t2_lookups: int
    ssd_reads: int
    ssd_writes: int
    predictions: int
    fallbacks: int

    @property
    def t1_hit_rate(self) -> float:
        total = self.t1_hits + self.t1_misses
        return self.t1_hits / total if total else 0.0

    @property
    def t2_hit_rate(self) -> float:
        return self.t2_hits / self.t2_lookups if self.t2_lookups else 0.0

    @property
    def prediction_coverage(self) -> float:
        """Share of placement decisions made from real history (vs the
        cold-phase default strategy) in this window."""
        total = self.predictions + self.fallbacks
        return self.predictions / total if total else 0.0


_TRACKED = (
    ("t1_hits", "t1_hits"),
    ("t1_misses", "t1_misses"),
    ("t2_hits", "t2_hits"),
    ("t2_lookups", "t2_lookups"),
    ("ssd_reads", "ssd_page_reads"),
    ("ssd_writes", "ssd_page_writes"),
    ("predictions", "predictions_made"),
    ("fallbacks", "fallback_placements"),
)


class StatsTimeline:
    """Snapshots a runtime's counters every ``window`` coalesced accesses.

    Args:
        runtime: the runtime whose counters to window.
        window: snapshot cadence in coalesced accesses.
        telemetry: optional :class:`~repro.obs.telemetry.Telemetry` —
            every timeline boundary also forces a delta window of the
            telemetry's full metrics registry at the same position, so
            the hand-picked :class:`StatsWindow` stream and the registry
            window stream (``telemetry.windows()``) share boundaries and
            can be joined on ``position``.
    """

    def __init__(self, runtime: GMTRuntime, window: int = 10_000, telemetry=None) -> None:
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.runtime = runtime
        self.window = window
        self.telemetry = telemetry
        self._windows: list[StatsWindow] = []
        self._last = self._capture()
        self._last_accesses = runtime.stats.coalesced_accesses

    def _capture(self) -> dict[str, int]:
        stats = self.runtime.stats
        return {name: getattr(stats, attr) for name, attr in _TRACKED}

    def maybe_snapshot(self) -> StatsWindow | None:
        """Snapshot if at least one full window has elapsed; returns the
        new window (or None).  Call after each warp — cheap when idle."""
        accesses = self.runtime.stats.coalesced_accesses
        if accesses - self._last_accesses < self.window:
            return None
        return self.snapshot()

    def snapshot(self) -> StatsWindow:
        """Force a window boundary now."""
        now = self._capture()
        accesses = self.runtime.stats.coalesced_accesses
        window = StatsWindow(
            index=len(self._windows),
            accesses=accesses - self._last_accesses,
            **{name: now[name] - self._last[name] for name, _ in _TRACKED},
        )
        self._windows.append(window)
        self._last = now
        self._last_accesses = accesses
        if self.telemetry is not None:
            self.telemetry.snapshotter.snapshot(accesses)
        return window

    def windows(self) -> list[StatsWindow]:
        return list(self._windows)

    def series(self, metric: str) -> list[float]:
        """One metric across windows, e.g. ``series("t2_hit_rate")``."""
        if not self._windows:
            return []
        if not hasattr(self._windows[0], metric):
            raise ConfigError(f"unknown timeline metric {metric!r}")
        return [getattr(w, metric) for w in self._windows]

    def run(self, trace) -> None:
        """Convenience: replay ``trace`` through the runtime, snapshotting
        as windows fill, with a final partial window."""
        for warp in trace:
            self.runtime.access_warp(warp)
            self.maybe_snapshot()
        if self.runtime.stats.coalesced_accesses > self._last_accesses:
            self.snapshot()
