"""Set-dueling adaptive placement — an extension beyond the paper.

GMT-Reuse wins on average, but section 3.3 shows per-app upsets (LavaMD's
history-free phase, GMT-Random's Hotspot showing).  A classic answer from
the cache-replacement literature the paper draws on (DIP/set-dueling,
Qureshi+ ISCA'07) is to *let the workload pick the policy at runtime*:

- a small fixed sample of pages ("leader set A") is always placed by
  policy A, another sample by policy B;
- every other page (the "followers") is placed by whichever leader set's
  Tier-2 placements are currently paying off — measured as the *yield*:
  placements that later return from Tier-2, over placements made;
- yields decay each epoch so the duel tracks phase changes.

:class:`DuelingPolicy` duels GMT-TierOrder (insert everything — wins when
reuse comfortably fits Tier-1+2) against GMT-Reuse (selective — wins when
indiscriminate insertion floods Tier-2).  Select it with
``GMTConfig(policy="dueling")``.

Measured caveat (see the adaptive tests): unlike CPU caches, the duelled
resource here is *one shared* Tier-2, so leader-set placements interfere
with each other's measurements — the duel converges to the better policy
on clear-cut workloads but gives up a few percent against always-running
GMT-Reuse, which remains the recommended default.  The value of this
class is the quantified comparison, not a new default.
"""

from __future__ import annotations

import random

from repro.core.config import GMTConfig
from repro.core.placement import PlacementDecision
from repro.core.policies import (
    PlacementPlan,
    PlacementPolicy,
    ReusePolicy,
    TierOrderPolicy,
)
from repro.core.stats import RuntimeStats
from repro.errors import ConfigError
from repro.mem.page import PageState
from repro.reuse.vtd import VirtualTimestampClock

_SET_KEY = "dueling_set"  # PageState.policy_state: which policy placed it


class _LeaderScore:
    """Decayed placement/return counters for one leader set."""

    def __init__(self) -> None:
        self.placements = 0.0
        self.returns = 0.0

    def decay(self, factor: float) -> None:
        self.placements *= factor
        self.returns *= factor

    @property
    def yield_rate(self) -> float:
        """Returns per placement; optimistic prior when unsampled."""
        if self.placements < 1.0:
            return 1.0
        return self.returns / self.placements


class DuelingPolicy(PlacementPolicy):
    """Set-dueling between GMT-TierOrder (A) and GMT-Reuse (B)."""

    name = "dueling"
    tier2_evicts_on_full = True

    #: 1 / sampling ratio: pages with ``hash % MODULUS == 0`` lead for A,
    #: ``== 1`` lead for B.
    MODULUS = 32
    #: Evictions per scoring epoch; scores halve at each boundary.
    EPOCH_EVICTIONS = 512
    DECAY = 0.5
    #: Yield advantage TierOrder must show before followers switch to it.
    #: Sample-set yields are measured under follower interference (a
    #: churned Tier-2 depresses everyone), so small differences are noise;
    #: the selective policy is the safe default.
    SWITCH_MARGIN = 0.05

    def __init__(
        self,
        config: GMTConfig,
        stats: RuntimeStats,
        vts: VirtualTimestampClock,
        rng: random.Random,
    ) -> None:
        super().__init__(config, stats)
        self.policy_a = TierOrderPolicy(config, stats)
        self.policy_b = ReusePolicy(config, stats, vts, rng)
        self.score_a = _LeaderScore()
        self.score_b = _LeaderScore()
        self._evictions_this_epoch = 0

    def attach_telemetry(self, telemetry) -> None:
        super().attach_telemetry(telemetry)
        self.policy_a.attach_telemetry(telemetry)
        self.policy_b.attach_telemetry(telemetry)

    # ------------------------------------------------------------------
    def _set_of(self, page: int) -> str | None:
        bucket = hash(page) % self.MODULUS
        if bucket == 0:
            return "a"
        if bucket == 1:
            return "b"
        return None

    def _leader(self) -> PlacementPolicy:
        # Ties (including the unsampled cold start) go to GMT-Reuse: the
        # selective policy cannot pollute Tier-2, so it is the safer
        # default while evidence accumulates.
        if self.score_a.yield_rate > self.score_b.yield_rate + self.SWITCH_MARGIN:
            return self.policy_a
        return self.policy_b

    def _policy_for(self, page: int) -> PlacementPolicy:
        sample = self._set_of(page)
        if sample == "a":
            return self.policy_a
        if sample == "b":
            return self.policy_b
        return self._leader()

    @property
    def following(self) -> str:
        """Which policy the followers currently use ('tier-order'/'reuse')."""
        return self._leader().name

    # ------------------------------------------------------------------
    def on_access(self, state: PageState, vtd: int | None) -> None:
        # The reuse policy's sampler must see the whole stream regardless
        # of which policy ends up placing this page.
        self.policy_b.on_access(state, vtd)

    @property
    def hits_batchable(self) -> bool:
        return self.policy_b.hits_batchable

    def on_tier1_fill(self, state: PageState, from_tier2: bool = False) -> None:
        self.policy_b.on_tier1_fill(state, from_tier2)
        placed_by = state.policy_state.pop(_SET_KEY, None)
        if placed_by and from_tier2:
            score = self.score_a if placed_by == "a" else self.score_b
            score.returns += 1.0

    def choose(self, state: PageState) -> PlacementPlan:
        return self._policy_for(state.page).choose(state)

    def on_evicted(self, state: PageState, plan: PlacementPlan) -> None:
        policy = self._policy_for(state.page)
        policy.on_evicted(state, plan)
        sample = self._set_of(state.page)
        if sample and plan.decision is PlacementDecision.PLACE_TIER2:
            score = self.score_a if sample == "a" else self.score_b
            score.placements += 1.0
            state.policy_state[_SET_KEY] = sample
        self._evictions_this_epoch += 1
        if self._evictions_this_epoch >= self.EPOCH_EVICTIONS:
            self._evictions_this_epoch = 0
            self.score_a.decay(self.DECAY)
            self.score_b.decay(self.DECAY)


