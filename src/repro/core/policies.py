"""The three Tier-1 eviction/placement policies of paper section 2.1.

- :class:`TierOrderPolicy` (GMT-TierOrder, 2.1.1): every victim goes to the
  next tier down; Tier-2 runs its own clock algorithm.
- :class:`RandomPolicy` (GMT-Random, 2.1.2): a coin flip decides host
  memory vs SSD.
- :class:`ReusePolicy` (GMT-Reuse, 2.1.3): predict the victim's remaining
  reuse distance (RRD) from sampled VTD->RD regression plus a 3-state
  Markov chain over per-page eviction history, then place by Eq. 1 —
  retain in Tier-1 (short), host memory (medium), or bypass to SSD (long),
  with section 2.2's 80 % Tier-3-bias override.

A policy is a pure decision maker: the runtime owns tiers, transfers and
counters and calls the hooks defined on :class:`PlacementPolicy`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.core.config import GMTConfig
from repro.core.placement import PlacementDecision, Tier3BiasHeuristic
from repro.core.stats import RuntimeStats
from repro.errors import ConfigError
from repro.mem.page import PageState
from repro.reuse.classifier import ReuseClass, RRDClassifier
from repro.reuse.markov import LastTierPredictor, MarkovTierPredictor
from repro.reuse.sampler import VTDSampler
from repro.reuse.vtd import VirtualTimestampClock


@dataclass(frozen=True)
class PlacementPlan:
    """What :meth:`PlacementPolicy.choose` decided for one clock victim."""

    decision: PlacementDecision
    #: The Markov prediction behind the decision (None when the policy does
    #: not predict, or fell back to its default strategy).
    predicted_class: ReuseClass | None = None
    #: True when the 80 % heuristic overrode a Tier-3 prediction.
    forced_tier2: bool = False
    #: True when no usable history existed and a default strategy decided.
    from_fallback: bool = False


class PlacementPolicy(abc.ABC):
    """Decision-maker for Tier-1 clock victims."""

    name: str = "abstract"
    #: GMT-TierOrder manages Tier-2 with a clock; the others use FIFO.
    tier2_uses_clock: bool = False
    #: On a full Tier-2, evict (TierOrder/Random, section 2.2) or bypass
    #: (Reuse, section 2.1.3: "we simply either discard (if clean) or put
    #: it in Tier-3 (if dirty)").
    tier2_evicts_on_full: bool = True
    #: Optional :class:`~repro.obs.telemetry.Telemetry`; None is the
    #: null-sink fast path.
    telemetry = None

    def __init__(self, config: GMTConfig, stats: RuntimeStats) -> None:
        self.config = config
        self.stats = stats

    def attach_telemetry(self, telemetry) -> None:
        """Hook the policy's decision points into ``telemetry`` (pass
        None to detach).  Subclasses extend this to wire their own
        pipeline stages (the reuse sampler, the Markov predictor)."""
        self.telemetry = telemetry

    def on_access(self, state: PageState, vtd: int | None) -> None:
        """Observe one coalesced access (before hit/miss is serviced)."""

    @property
    def hits_batchable(self) -> bool:
        """Whether Tier-1 hits may currently skip :meth:`on_access`.

        The vectorized engine (:mod:`repro.core.vector`) retires runs of
        hits without calling ``on_access`` per access, which is only
        sound while the method is observationally a no-op.  The default
        answers True exactly when the policy inherits the base no-op;
        policies whose ``on_access`` does work override this (GMT-Reuse:
        batchable once its sampling window closes).  May flip False->True
        mid-run, never the reverse.
        """
        return type(self).on_access is PlacementPolicy.on_access

    def on_tier1_fill(self, state: PageState, from_tier2: bool = False) -> None:
        """A page was just installed in Tier-1 (demand fill).

        ``from_tier2`` tells the policy whether the fill was served by
        host memory (a successful earlier placement) or by the SSD.
        """

    @abc.abstractmethod
    def choose(self, state: PageState) -> PlacementPlan:
        """Decide the fate of clock victim ``state``."""

    def on_evicted(self, state: PageState, plan: PlacementPlan) -> None:
        """The victim actually left Tier-1 under ``plan``."""
        state.eviction_count += 1


class TierOrderPolicy(PlacementPolicy):
    """GMT-TierOrder: strict tier ordering, clock in both top tiers."""

    name = "tier-order"
    tier2_uses_clock = True
    tier2_evicts_on_full = True

    def choose(self, state: PageState) -> PlacementPlan:
        return PlacementPlan(decision=PlacementDecision.PLACE_TIER2)


class RandomPolicy(PlacementPolicy):
    """GMT-Random: place each victim in Tier-2 or Tier-3 by coin flip."""

    name = "random"
    tier2_evicts_on_full = True

    def __init__(
        self,
        config: GMTConfig,
        stats: RuntimeStats,
        rng: random.Random,
        tier2_probability: float = 0.5,
    ) -> None:
        super().__init__(config, stats)
        if not 0.0 <= tier2_probability <= 1.0:
            raise ConfigError(f"tier2_probability must be in [0, 1]: {tier2_probability}")
        self._rng = rng
        self.tier2_probability = tier2_probability

    def choose(self, state: PageState) -> PlacementPlan:
        if self._rng.random() < self.tier2_probability:
            return PlacementPlan(decision=PlacementDecision.PLACE_TIER2)
        return PlacementPlan(decision=PlacementDecision.BYPASS_TIER3)


class ReusePolicy(PlacementPolicy):
    """GMT-Reuse: RRD-predicted placement approximating Belady's OPT.

    Pipeline (paper section 2.1.3):

    1. every coalesced access feeds the VTD sampler, which maintains the
       pipelined OLS fit RD = m * VTD + b;
    2. when a page returns to Tier-1, its eviction's *actual* remaining
       VTD is known; Eq. 3 + Eq. 1 turn it into the "correct" tier, which
       updates the Markov chain (and resolves the accuracy bookkeeping);
    3. when the clock nominates a victim, the Markov chain predicts its
       next correct tier from the page's last correct tier; Eq. 1's class
       maps to retain / Tier-2 / Tier-3, subject to the 80 % heuristic.
    """

    name = "reuse"
    # Predicted-medium placements flow through a FIFO Tier-2 (section
    # 2.2); only heuristic-forced placements are free-slot-only — the
    # runtime narrows this per-plan via ``PlacementPlan.forced_tier2``.
    tier2_evicts_on_full = True

    # Keys into PageState.policy_state.
    _LAST_CORRECT = "last_correct"
    _PENDING = "pending_pred"

    def __init__(
        self,
        config: GMTConfig,
        stats: RuntimeStats,
        vts: VirtualTimestampClock,
        rng: random.Random,
    ) -> None:
        super().__init__(config, stats)
        self._vts = vts
        self._rng = rng
        self.sampler = VTDSampler(
            sample_target=config.sample_target, batch_size=config.sample_batch
        )
        if config.reuse_predictor == "last":
            self.predictor = LastTierPredictor()
        else:
            self.predictor = MarkovTierPredictor()
        self.classifier = RRDClassifier(config.tier1_frames, config.tier2_frames)
        self.heuristic = Tier3BiasHeuristic(
            threshold=config.tier3_bias_threshold, window=config.tier3_bias_window
        )
        self._heuristic_enabled = config.tier3_bias_enabled

    # ------------------------------------------------------------------
    def attach_telemetry(self, telemetry) -> None:
        super().attach_telemetry(telemetry)
        self.sampler.telemetry = telemetry

    def on_access(self, state: PageState, vtd: int | None) -> None:
        self.sampler.observe(state.page, vtd)

    @property
    def hits_batchable(self) -> bool:
        # ``observe`` is a hard no-op once the sampling target is met; a
        # telemetry sink only records inside the window, so "done" is the
        # full batchability condition.
        return self.sampler.sampling_done

    def on_tier1_fill(self, state: PageState, from_tier2: bool = False) -> None:
        """Resolve the page's previous eviction now that its actual
        remaining VTD is known (paper: "this can be found out when a page
        is brought into GPU memory")."""
        if state.last_eviction_ts is None:
            return  # cold fill; no prior eviction to resolve
        rvtd = self._vts.remaining_vtd_since(state.last_eviction_ts)
        state.last_eviction_ts = None
        rrd = self.sampler.predict_rrd(rvtd)
        if rrd is None:
            return  # no regression model yet; cannot resolve
        actual = self.classifier.classify(rrd)
        last_correct = state.policy_state.get(self._LAST_CORRECT)
        if last_correct is not None:
            self.predictor.record_transition(last_correct, actual)
        state.policy_state[self._LAST_CORRECT] = actual
        pending = state.policy_state.pop(self._PENDING, None)
        if pending is not None:
            self.stats.record_prediction_outcome(pending.name, actual.name)
        if self.telemetry is not None:
            self.telemetry.instant(
                "markov-resolve", "reuse", page=state.page, actual=actual.name
            )
            lifecycle = getattr(self.telemetry, "lifecycle", None)
            if lifecycle is not None:
                # Join point for predicted-vs-actual per page: the flight
                # recorder learns what the earlier placement *should* have
                # predicted, the moment the truth is known.
                from repro.obs.lifecycle import LifecycleKind

                cause = "unresolved"
                if pending is not None:
                    cause = "correct" if pending is actual else "mispredicted"
                lifecycle.emit(
                    LifecycleKind.RESOLVE,
                    state.page,
                    self.stats.coalesced_accesses,
                    cause=cause,
                    predicted=None if pending is None else pending.name.lower(),
                    detail=actual.name.lower(),
                )

    def choose(self, state: PageState) -> PlacementPlan:
        last_correct = state.policy_state.get(self._LAST_CORRECT)
        predicted = self.predictor.predict(last_correct)
        if predicted is None:
            # No usable history: proceed with a default strategy as the
            # paper allows during the cold phase ("GMT-Random or
            # GMT-TierOrder").  TierOrder — insert into Tier-2 — is used:
            # the FIFO flow-through drains pages that never return, and
            # pages that do return cheaply build the history the
            # predictor needs.
            self.stats.fallback_placements += 1
            self.heuristic.record(ReuseClass.MEDIUM)
            return PlacementPlan(
                decision=PlacementDecision.PLACE_TIER2, from_fallback=True
            )

        self.stats.predictions_made += 1
        self.heuristic.record(predicted)
        if self.telemetry is not None:
            self.telemetry.markov_confidence.observe(
                self.predictor.confidence(last_correct)
            )
        decision = PlacementDecision.for_class(predicted)
        if (
            self._heuristic_enabled
            and decision is PlacementDecision.BYPASS_TIER3
            and self.heuristic.should_force_tier2()
        ):
            return PlacementPlan(
                decision=PlacementDecision.PLACE_TIER2,
                predicted_class=predicted,
                forced_tier2=True,
            )
        return PlacementPlan(decision=decision, predicted_class=predicted)

    def on_evicted(self, state: PageState, plan: PlacementPlan) -> None:
        super().on_evicted(state, plan)
        state.last_eviction_ts = self._vts.now
        if plan.predicted_class is not None:
            state.policy_state[self._PENDING] = plan.predicted_class
        else:
            state.policy_state.pop(self._PENDING, None)


def make_policy(
    config: GMTConfig,
    stats: RuntimeStats,
    vts: VirtualTimestampClock,
    rng: random.Random,
) -> PlacementPolicy:
    """Instantiate the policy named by ``config.policy``."""
    if config.policy == "tier-order":
        return TierOrderPolicy(config, stats)
    if config.policy == "random":
        return RandomPolicy(config, stats, rng)
    if config.policy == "reuse":
        return ReusePolicy(config, stats, vts, rng)
    if config.policy == "dueling":
        # Local import: the adaptive module composes the policies above.
        from repro.core.adaptive import DuelingPolicy

        return DuelingPolicy(config, stats, vts, rng)
    raise ConfigError(f"unknown policy: {config.policy!r}")
