"""Placement decisions and the 80 % Tier-3-bias heuristic.

Paper section 2.2: "if greater than 80% of the last evictions from Tier-1
have an RRD that would place the pages in Tier-3, we still place the
current eviction into Tier-2 even if the prediction asks us to place it in
Tier-3."  Without this, workloads whose reuse distances all exceed
Tier-1+Tier-2 (Hotspot) would leave host memory empty and gain nothing
from the hierarchy; with it, Hotspot sees a 73 % SSD-I/O reduction.
"""

from __future__ import annotations

import enum
from collections import deque

from repro.errors import ConfigError
from repro.reuse.classifier import ReuseClass


class PlacementDecision(enum.Enum):
    """Fate of a clock victim (paper section 2.1.3 "Overview")."""

    RETAIN_TIER1 = 1   # short-reuse: keep, run another clock round
    PLACE_TIER2 = 2    # medium-reuse: into host memory
    BYPASS_TIER3 = 3   # long-reuse: discard clean / write dirty to SSD

    @classmethod
    def for_class(cls, reuse_class: ReuseClass) -> "PlacementDecision":
        """Map an Eq. 1 class to its placement (same tier numbering)."""
        return cls(reuse_class.value)


class Tier3BiasHeuristic:
    """Sliding window over recent predicted classes; fires when Tier-3
    predictions dominate.

    Args:
        threshold: fraction of the window that must be LONG (paper: 0.8).
        window: number of recent evictions considered.  The heuristic only
            activates once the window is full, so early noisy predictions
            cannot trigger it.
    """

    def __init__(self, threshold: float = 0.8, window: int = 64) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigError(f"threshold must be in (0, 1], got {threshold}")
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.threshold = threshold
        self.window = window
        self._recent: deque[bool] = deque(maxlen=window)
        self._long_count = 0

    def record(self, predicted: ReuseClass) -> None:
        """Note one eviction's predicted class."""
        if len(self._recent) == self.window:
            if self._recent[0]:
                self._long_count -= 1
        is_long = predicted is ReuseClass.LONG
        self._recent.append(is_long)
        if is_long:
            self._long_count += 1

    @property
    def long_fraction(self) -> float:
        """Fraction of the (current) window predicted LONG."""
        if not self._recent:
            return 0.0
        return self._long_count / len(self._recent)

    def should_force_tier2(self) -> bool:
        """True when a LONG prediction should be overridden into Tier-2."""
        if len(self._recent) < self.window:
            return False
        return self._long_count / self.window > self.threshold
