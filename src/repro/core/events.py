"""Optional runtime event tracing — paper Figure 2, observable.

Figure 2 shows a GPU thread's lifetime through GMT: access, Tier-2
lookup, fetch, eviction decision, writeback.  Attaching a
:class:`RuntimeEventLog` to a runtime records exactly that sequence per page,
which is how the tests pin down the pipeline's order of operations and how
users debug surprising placement behaviour.

Tracing is opt-in and zero-cost when detached (a single ``is None`` check
per emission point).
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterable


class EventKind(enum.Enum):
    """Every observable step of the access/eviction pipeline."""

    T1_HIT = "t1-hit"
    MISS = "miss"
    T2_LOOKUP = "t2-lookup"
    T2_HIT = "t2-hit"
    SSD_READ = "ssd-read"
    T1_FILL = "t1-fill"
    RETAIN = "retain"              # short-reuse second chance
    EVICT_T1 = "evict-t1"
    PLACE_T2 = "place-t2"
    BYPASS_T3 = "bypass-t3"
    T2_EVICT = "t2-evict"
    WRITEBACK = "writeback"
    DISCARD = "discard"
    PREFETCH = "prefetch"


@dataclass(frozen=True)
class RuntimeEvent:
    """One pipeline step: what happened, to which page, at what virtual
    time (coalesced-access count)."""

    kind: EventKind
    page: int
    vts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.vts:>8}] {self.kind.value:<10} page={self.page}"


class RuntimeEventLog:
    """Bounded (or unbounded) recorder of :class:`RuntimeEvent`.

    Args:
        capacity: keep only the most recent N events (None = unbounded;
            fine for tests, unwise for million-access runs).
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None: {capacity}")
        self._events: deque[RuntimeEvent] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def emit(self, kind: EventKind, page: int, vts: int) -> None:
        self._events.append(RuntimeEvent(kind=kind, page=page, vts=vts))

    def events(self, kind: EventKind | None = None, page: int | None = None) -> list[RuntimeEvent]:
        """Filtered snapshot (both filters optional)."""
        return [
            e
            for e in self._events
            if (kind is None or e.kind is kind) and (page is None or e.page == page)
        ]

    def kinds_for_page(self, page: int) -> list[EventKind]:
        """The page's lifetime as a kind sequence (Figure 2's storyline)."""
        return [e.kind for e in self._events if e.page == page]

    def summary(self) -> dict[str, int]:
        """Event counts by kind (stable keys for reports)."""
        counts = Counter(e.kind.value for e in self._events)
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        self._events.clear()


def format_events(events: Iterable[RuntimeEvent]) -> str:
    """Multi-line human-readable rendering (debugging helper)."""
    return "\n".join(str(e) for e in events)
