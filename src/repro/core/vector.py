"""Struct-of-arrays (SoA) replay engine — the vectorized hot path.

The scalar :class:`~repro.core.runtime.GMTRuntime` pays one Python object
hop per coalesced access: a dict lookup in the page table, an enum
comparison, a clock-dict lookup, half a dozen attribute increments.  That
caps every experiment cell, bench number, and serve run (ROADMAP item 1).

This module keeps the *miss pipeline* — the part with real control flow:
eviction decisions, Tier-2 admission, writebacks — byte-for-byte on the
scalar code path, and vectorizes only what dominates the instruction
stream: runs of consecutive Tier-1 hits.  Per-page metadata lives in
parallel numpy arrays indexed by page id (:class:`VectorPageStore`); the
replay loop detects maximal hit prefixes with one fancy-indexed compare
and retires them with a handful of array ops (:meth:`VectorEngineMixin.
_batch_hits`) instead of one Python iteration each.

Byte-identity with the scalar engine is a hard requirement (the
``gmt-check`` differential harness enforces it, see
``repro.check.differential``), which dictates the design:

- a batched hit retires the *same* state transitions in the same order a
  scalar hit would: VTD clock tick, per-page timestamp/access-count
  update, stats increments, compute-cost accrual, queueing-model arrival,
  dirty marking, clock reference bit;
- float accumulators advance through
  :func:`repro.sim.cost.sequential_float_sum`, which reproduces the exact
  rounding of a sequential ``+=`` loop (``np.add.accumulate`` is the
  sequential recurrence; ``np.add.reduce`` would pairwise-sum and drift);
- anything the batch cannot express exactly — misses, prefetched pages'
  first demand touch, policies whose ``on_access`` is observable
  (:attr:`~repro.core.policies.PlacementPolicy.hits_batchable`), window
  boundary accesses under attached telemetry — drops to the inherited
  scalar code path for that access; per-access instruments (event log,
  profiler, full flight recorder, periodic checks) demote the whole run
  (the ``batch_capable`` negotiation, see :mod:`repro.obs.batch`).

:func:`vector_variant` composes the mixin onto any runtime class whose
access path is inherited from :class:`GMTRuntime` (all the baselines),
and :func:`repro.core.factory.make_runtime` is the public way to pick an
engine.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.runtime import GMTRuntime
from repro.errors import CapacityError, PageStateError, SimulationError
from repro.mem.clock_replacement import ClockReplacement
from repro.mem.page import PageLocation, PageState
from repro.mem.page_table import PageTable
from repro.sim.gpu import WarpAccess, coalesce
from repro.workloads.trace import Workload

__all__ = [
    "TraceArrays",
    "VectorClock",
    "VectorEngineMixin",
    "VectorPageStore",
    "VectorPageState",
    "VectorPageTable",
    "VectorReplayEngine",
    "materialize_trace",
    "vector_variant",
]

#: Tier codes as stored in :attr:`VectorPageStore.loc` (== PageLocation.value).
_T1_CODE = PageLocation.TIER1.value
_T3_CODE = PageLocation.TIER3.value
#: Decode table: location code -> PageLocation (index 0 unused).
_LOC_FROM_CODE = (None, PageLocation.TIER1, PageLocation.TIER2, PageLocation.TIER3)

#: Adaptive hit-window bounds (batch sizes; tuning only, never semantics).
_WINDOW_MIN = 64
_WINDOW_INIT = 1024
_WINDOW_MAX = 8192
#: Accesses replayed per scalar burst while the policy's ``on_access`` is
#: observable (e.g. GMT-Reuse during its sampling window) — between bursts
#: we re-check ``hits_batchable`` so the batch path engages the moment the
#: sampler closes.
_SCALAR_STRIDE = 256
#: Consecutive empty hit-prefixes (probe found an immediate miss) before
#: the replay stops probing and bursts scalar for a stride.  Bounds the
#: probe overhead on miss-dominated streams to ~1 fancy index per
#: ``_SCALAR_STRIDE`` accesses, so the vector engine degrades to ~scalar
#: speed instead of below it when Tier-1 is thrashing.
_MISS_STREAK_LIMIT = 4
#: Warps gathered per chunk when streaming a generic iterable trace.
_STREAM_CHUNK_WARPS = 4096


class VectorPageStore:
    """Dense parallel arrays of per-page metadata, indexed by page id.

    One store backs a runtime's page table *and* its Tier-1 clock, so the
    batch path reads tier ids, prefetch flags, dirty bits and clock frames
    with pure fancy indexing.  Arrays grow geometrically on demand; page
    ids are assumed reasonably dense (they are: workloads number pages
    ``0..footprint``).  Sparse gigantic ids — e.g. the serve layer's
    namespaced ``tenant << 32`` pages — exceed :data:`MAX_PAGES` and raise,
    which is why the serve multiplexer always runs the scalar engine.
    """

    #: Hard cap on the dense address space (64 Mi pages ~= several GiB of
    #: metadata).  Beyond this, use ``engine="scalar"``.
    MAX_PAGES = 1 << 26

    __slots__ = (
        "size",
        "loc",
        "dirty",
        "prefetched",
        "last_access",
        "last_evict",
        "access_count",
        "evict_count",
        "t1_frame",
    )

    def __init__(self, initial: int = 1024) -> None:
        initial = max(1, initial)
        self.size = initial
        self.loc = np.full(initial, _T3_CODE, dtype=np.int8)
        self.dirty = np.zeros(initial, dtype=bool)
        self.prefetched = np.zeros(initial, dtype=bool)
        self.last_access = np.full(initial, -1, dtype=np.int64)
        self.last_evict = np.full(initial, -1, dtype=np.int64)
        self.access_count = np.zeros(initial, dtype=np.int64)
        self.evict_count = np.zeros(initial, dtype=np.int64)
        self.t1_frame = np.full(initial, -1, dtype=np.int32)

    def ensure(self, n: int) -> None:
        """Grow the arrays to cover page ids ``0..n-1``."""
        if n <= self.size:
            return
        if n > self.MAX_PAGES:
            raise SimulationError(
                f"page id {n - 1} exceeds the vector engine's dense page-id "
                f"capacity ({self.MAX_PAGES}); run this trace with "
                "engine='scalar'"
            )
        new = min(max(n, self.size * 2), self.MAX_PAGES)
        self.loc = self._grow(self.loc, new, _T3_CODE)
        self.dirty = self._grow(self.dirty, new, False)
        self.prefetched = self._grow(self.prefetched, new, False)
        self.last_access = self._grow(self.last_access, new, -1)
        self.last_evict = self._grow(self.last_evict, new, -1)
        self.access_count = self._grow(self.access_count, new, 0)
        self.evict_count = self._grow(self.evict_count, new, 0)
        self.t1_frame = self._grow(self.t1_frame, new, -1)
        self.size = new

    @staticmethod
    def _grow(arr: np.ndarray, new: int, fill) -> np.ndarray:
        out = np.full(new, fill, dtype=arr.dtype)
        out[: arr.shape[0]] = arr
        return out


class VectorPageState(PageState):
    """A :class:`PageState` view over one :class:`VectorPageStore` row.

    The scalar miss pipeline keeps mutating ``state.location``,
    ``state.dirty`` etc.; these data descriptors route every read and
    write to the shared arrays, so the scalar and batch paths can never
    disagree about a page.  ``policy_state`` stays a plain per-page dict —
    it holds arbitrary policy scratch (Markov histories, pending
    predictions) that has no array shape.
    """

    def __init__(self, page: int, store: VectorPageStore) -> None:
        store.ensure(page + 1)
        self.page = page
        self._store = store
        self.policy_state = {}

    @property
    def location(self) -> PageLocation:
        return _LOC_FROM_CODE[self._store.loc[self.page]]

    @location.setter
    def location(self, value: PageLocation) -> None:
        self._store.loc[self.page] = value.value

    @property
    def dirty(self) -> bool:
        return bool(self._store.dirty[self.page])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._store.dirty[self.page] = value

    @property
    def prefetched(self) -> bool:
        return bool(self._store.prefetched[self.page])

    @prefetched.setter
    def prefetched(self, value: bool) -> None:
        self._store.prefetched[self.page] = value

    @property
    def last_access_ts(self) -> int | None:
        ts = self._store.last_access[self.page]
        return None if ts < 0 else int(ts)

    @last_access_ts.setter
    def last_access_ts(self, value: int | None) -> None:
        self._store.last_access[self.page] = -1 if value is None else value

    @property
    def last_eviction_ts(self) -> int | None:
        ts = self._store.last_evict[self.page]
        return None if ts < 0 else int(ts)

    @last_eviction_ts.setter
    def last_eviction_ts(self, value: int | None) -> None:
        self._store.last_evict[self.page] = -1 if value is None else value

    @property
    def access_count(self) -> int:
        return int(self._store.access_count[self.page])

    @access_count.setter
    def access_count(self, value: int) -> None:
        self._store.access_count[self.page] = value

    @property
    def eviction_count(self) -> int:
        return int(self._store.evict_count[self.page])

    @eviction_count.setter
    def eviction_count(self, value: int) -> None:
        self._store.evict_count[self.page] = value


class VectorPageTable(PageTable):
    """Page table whose entries are views over a :class:`VectorPageStore`.

    ``_entries`` still maps page id -> state object, because the miss
    pipeline and the policies hold on to state objects; but the per-page
    *data* lives in the store.  Every page ever accessed takes at least
    one miss (all pages start on Tier-3), so every resident page has an
    entry here — the batch path never needs to create one.
    """

    def __init__(self, store: VectorPageStore) -> None:
        super().__init__()
        self._store = store

    def lookup(self, page: int) -> PageState:
        if page < 0:
            raise ValueError(f"page ids must be non-negative, got {page}")
        state = self._entries.get(page)
        if state is None:
            state = VectorPageState(page, self._store)
            self._entries[page] = state
        return state


class VectorClock:
    """Clock replacement over numpy frame arrays, byte-compatible with
    :class:`~repro.mem.clock_replacement.ClockReplacement`.

    The sweep methods are literal ports of the scalar algorithm (misses
    are scalar anyway; an identical sweep is the cheapest way to guarantee
    identical victims).  What the arrays buy is :meth:`touch_many` — the
    per-hit reference-bit set becomes one fancy-indexed store, with the
    page -> frame map held in :attr:`VectorPageStore.t1_frame` instead of
    a dict.
    """

    def __init__(self, capacity: int, store: VectorPageStore) -> None:
        if capacity < 0:
            raise CapacityError(f"negative clock capacity {capacity}")
        self.capacity = capacity
        self._store = store
        self._pages = np.full(capacity, -1, dtype=np.int64)
        self._refbits = np.zeros(capacity, dtype=bool)
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._hand = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, page: int) -> bool:
        return self._frame_of(page) != -1

    def _frame_of(self, page: int) -> int:
        t1f = self._store.t1_frame
        if page < 0 or page >= t1f.shape[0]:
            return -1
        return int(t1f[page])

    @property
    def full(self) -> bool:
        return not self._free

    def insert(self, page: int, referenced: bool = True) -> None:
        """Install ``page`` in a free frame (reference bit set by default,
        since insertion is itself an access)."""
        if self._frame_of(page) != -1:
            raise PageStateError(f"page {page} already tracked by clock")
        if not self._free:
            raise CapacityError("clock is full; call evict() first")
        frame = self._free.pop()
        self._pages[frame] = page
        self._refbits[frame] = referenced
        self._store.ensure(page + 1)
        self._store.t1_frame[page] = frame
        self._count += 1

    def touch(self, page: int) -> None:
        """Set the reference bit for ``page`` (called on every Tier hit)."""
        frame = self._frame_of(page)
        if frame == -1:
            raise PageStateError(f"page {page} not tracked by clock")
        self._refbits[frame] = True

    def touch_many(self, pages: np.ndarray) -> None:
        """Set the reference bits for a batch of tracked pages at once.

        Callers guarantee every page is tracked (the batch hit path only
        feeds Tier-1 residents); duplicates are fine.
        """
        self._refbits[self._store.t1_frame[pages]] = True

    def give_second_chance(self, page: int) -> None:
        """Re-arm ``page``'s reference bit without it being accessed."""
        self.touch(page)

    def remove(self, page: int) -> None:
        """Drop ``page`` from the clock (promotion or external eviction)."""
        frame = self._frame_of(page)
        if frame == -1:
            raise PageStateError(f"page {page} not tracked by clock")
        self._pages[frame] = -1
        self._refbits[frame] = False
        self._store.t1_frame[page] = -1
        self._free.append(frame)
        self._count -= 1

    def select_victim(self) -> int:
        """Sweep the hand and return (and remove) the next victim page."""
        if not self._count:
            raise PageStateError("clock is empty; nothing to evict")
        pages = self._pages
        refbits = self._refbits
        capacity = self.capacity
        hand = self._hand
        while True:
            page = pages[hand]
            if page == -1:
                hand = (hand + 1) % capacity
                continue
            if refbits[hand]:
                refbits[hand] = False
                hand = (hand + 1) % capacity
                continue
            hand = (hand + 1) % capacity
            self._hand = hand
            self.remove(int(page))
            return int(page)

    def select_victim_where(self, predicate) -> int | None:
        """Filtered clock sweep: evict the next victim satisfying
        ``predicate``; non-matching pages' reference bits stay untouched.
        Returns ``None`` when no tracked page matches."""
        if not any(predicate(int(p)) for p in self._pages if p != -1):
            return None
        pages = self._pages
        refbits = self._refbits
        capacity = self.capacity
        hand = self._hand
        # Two sweeps bound the scan: the first clears matching pages'
        # reference bits, the second must then find a clear one.
        for _ in range(2 * capacity + 1):
            page = pages[hand]
            if page == -1 or not predicate(int(page)):
                hand = (hand + 1) % capacity
                continue
            if refbits[hand]:
                refbits[hand] = False
                hand = (hand + 1) % capacity
                continue
            hand = (hand + 1) % capacity
            self._hand = hand
            self.remove(int(page))
            return int(page)
        self._hand = hand
        raise PageStateError("filtered clock sweep failed to converge")  # pragma: no cover

    def peek_victim(self) -> int:
        """Like :meth:`select_victim` but leaves the victim installed.

        The hand still sweeps (clearing reference bits), matching a real
        clock whose scan is destructive of recency state."""
        if not self._count:
            raise PageStateError("clock is empty; nothing to evict")
        pages = self._pages
        refbits = self._refbits
        capacity = self.capacity
        hand = self._hand
        while True:
            page = pages[hand]
            if page == -1:
                hand = (hand + 1) % capacity
                continue
            if refbits[hand]:
                refbits[hand] = False
                hand = (hand + 1) % capacity
                continue
            hand = (hand + 1) % capacity
            self._hand = hand
            return int(page)

    def pages(self) -> list[int]:
        """Snapshot of tracked pages in frame order (test helper)."""
        return [int(p) for p in self._pages if p != -1]


# ----------------------------------------------------------------------
# trace materialization
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class TraceArrays:
    """A warp trace flattened to its coalesced access stream.

    ``pages[k]``/``writes[k]`` describe the k-th coalesced access exactly
    as the scalar ``access_warp`` loop would issue it; ``n_warps`` is the
    number of warp instructions the stream came from.  ``warps[k]`` is
    the 1-based warp-instruction count up to and including access ``k``'s
    warp — instrumented replays restore ``stats.warp_instructions`` from
    it so window cuts observe the same mid-run value the scalar
    ``access_warp`` loop would have accumulated (None on legacy
    constructions; the engine then falls back to front-loading).
    """

    pages: np.ndarray
    writes: np.ndarray
    n_warps: int
    warps: np.ndarray | None = None


#: Materialized traces, cached per workload object.  Keyed weakly so the
#: cache follows the experiment harness's own workload cache lifetime.
_TRACE_CACHE: "weakref.WeakKeyDictionary[Workload, TraceArrays]" = (
    weakref.WeakKeyDictionary()
)


def materialize_trace(workload: Workload) -> TraceArrays:
    """Flatten (and cache) a workload's coalesced access stream.

    Workloads are re-iterable pure functions of their seed, so the flat
    arrays are a faithful replacement for re-generating the stream; the
    cache makes replaying one workload through several runtimes (every
    figure does this) pay the generation cost once.
    """
    cached = _TRACE_CACHE.get(workload)
    if cached is not None:
        return cached
    n_warps, pages, writes, warps = _flatten_warps(workload)
    arrays = TraceArrays(
        pages=np.asarray(pages, dtype=np.int64),
        writes=np.asarray(writes, dtype=bool),
        n_warps=n_warps,
        warps=np.asarray(warps, dtype=np.int64),
    )
    _TRACE_CACHE[workload] = arrays
    return arrays


def clear_trace_cache() -> None:
    """Drop all materialized traces (test/benchmark hygiene)."""
    _TRACE_CACHE.clear()


def _flatten_warps(
    trace: Iterable[WarpAccess],
) -> tuple[int, list[int], list[bool], list[int]]:
    pages: list[int] = []
    writes: list[bool] = []
    warps: list[int] = []
    n_warps = 0
    for warp in trace:
        n_warps += 1
        write = warp.write
        for page in coalesce(warp):
            pages.append(page)
            writes.append(write)
            warps.append(n_warps)
    return n_warps, pages, writes, warps


def _iter_trace_chunks(trace: Iterable[WarpAccess], chunk_warps: int):
    """Group a one-shot warp iterable into bounded flat chunks."""
    pages: list[int] = []
    writes: list[bool] = []
    warps: list[int] = []
    n_warps = 0
    for warp in trace:
        n_warps += 1
        write = warp.write
        for page in coalesce(warp):
            pages.append(page)
            writes.append(write)
            warps.append(n_warps)
        if n_warps >= chunk_warps:
            yield n_warps, pages, writes, warps
            pages, writes, warps, n_warps = [], [], [], 0
    if n_warps:
        yield n_warps, pages, writes, warps


# ----------------------------------------------------------------------
# the engine mixin
# ----------------------------------------------------------------------
class VectorEngineMixin:
    """Mixes the SoA replay loop into a :class:`GMTRuntime` subclass.

    Composition contract: the base class must inherit its ``run`` /
    ``access_warp`` / ``access`` path from :class:`GMTRuntime` (true for
    all the baselines — they only re-price costs in ``__init__``).  Use
    :func:`vector_variant` rather than composing by hand.
    """

    engine_name = "vector"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        store = VectorPageStore()
        self._vstore = store
        self.page_table = VectorPageTable(store)
        # Only the plain clock has a vector twin; a policy-zoo Tier-1
        # structure (s3fifo, mglru, ...) keeps its scalar implementation
        # and the whole replay falls back to the scalar loop.
        if type(self.t1_clock) is ClockReplacement:
            self.t1_clock = VectorClock(self.t1_clock.capacity, store)
        self._window = _WINDOW_INIT

    # -- capability gate ------------------------------------------------
    def _fallback_reason(self) -> str | None:
        """Why the batch path cannot run (None = it can).

        This is the capability negotiation: instruments that observe
        per-window or per-event structure declare ``batch_capable`` and
        ride the bulk path (:mod:`repro.obs.batch`); genuinely per-access
        consumers — the event log, the profiler, the full flight-recorder
        ring, periodic audits — demote the whole run to the inherited
        scalar loop.
        """
        if self._events is not None:
            return "event log records every access"
        if self._prof is not None:
            return "phase profiler wraps the per-access hot path"
        if self._check_every is not None:
            return "periodic conformance audit runs between accesses"
        if not isinstance(self.t1_clock, VectorClock):
            return (
                f"tier1_eviction={self.config.tier1_eviction!r} has no "
                "vector twin"
            )
        from repro.obs.batch import is_batch_capable

        if self._flight is not None and not is_batch_capable(self._flight):
            return (
                "full flight recorder is per-access "
                "(use --lifecycle-sample-rate for a batch-capable stream)"
            )
        if self._obs is not None and not is_batch_capable(self._obs):
            return "attached telemetry hosts a per-access instrument"
        return None

    def _vector_ready(self) -> bool:
        """Whether the batch path can run without observable differences."""
        return self._fallback_reason() is None

    def engine_resolution(self) -> tuple[str, str]:
        """The engine the next ``run`` will actually use, with the reason
        — the surface ``gmt-sim``/``gmt-serve`` print and export."""
        reason = self._fallback_reason()
        if reason is not None:
            return "scalar", reason
        if self._obs is not None:
            return "vector", "batch-capable telemetry rides the bulk hit path"
        return "vector", "no per-access consumers attached"

    # -- replay ---------------------------------------------------------
    def run(self, trace):
        if not self._vector_ready():
            return super().run(trace)
        obs = self._obs
        chain = obs.batch_observer() if obs is not None else None
        if isinstance(trace, Workload):
            trace = materialize_trace(trace)
        if isinstance(trace, TraceArrays):
            if chain is not None and trace.warps is not None:
                # Instrumented: warp counts accrue incrementally inside
                # the replay, so window cuts see the scalar mid-run value.
                self._replay_flat(
                    trace.pages, trace.writes, chain,
                    warps=trace.warps, n_warps=trace.n_warps,
                )
            else:
                self.stats.warp_instructions += trace.n_warps
                self._replay_flat(trace.pages, trace.writes, chain)
        else:
            # One-shot iterable (e.g. a tenant stream): bounded chunks.
            for n_warps, pages, writes, warps in _iter_trace_chunks(
                trace, _STREAM_CHUNK_WARPS
            ):
                pages = np.asarray(pages, dtype=np.int64)
                writes = np.asarray(writes, dtype=bool)
                if chain is not None:
                    self._replay_flat(
                        pages, writes, chain,
                        warps=np.asarray(warps, dtype=np.int64),
                        n_warps=n_warps,
                    )
                else:
                    self.stats.warp_instructions += n_warps
                    self._replay_flat(pages, writes, chain)
        if obs is not None:
            # Mirror the scalar run(): flush the final partial window so
            # the replay tail reaches telemetry.windows() (and gmt-top's
            # on_window feed) under the batch path too.
            obs.finish()
        return self.result()

    def _replay_flat(
        self,
        pages: np.ndarray,
        writes: np.ndarray,
        chain=None,
        warps: np.ndarray | None = None,
        n_warps: int = 0,
    ) -> None:
        """Replay one flat coalesced-access chunk.

        Hits retire in batches; every miss (and every access while the
        policy's ``on_access`` is observable) goes through the inherited
        scalar ``access``, so the miss pipeline is *the* scalar pipeline.

        ``chain`` is the telemetry's per-batch observer chain
        (:class:`repro.obs.batch.BatchObserverChain`, None when
        uninstrumented): it caps each batch to end just before the next
        windowed-snapshot boundary — the boundary access replays scalar,
        so window cuts inherit the scalar tick ordering byte-for-byte —
        and is notified after each retired run.

        ``warps`` (instrumented runs only) carries the cumulative warp
        count per access; ``stats.warp_instructions`` is restored from it
        around every scalar-replayed access and every retired batch, so
        any window cut observes exactly the value the scalar
        ``access_warp`` loop would have accumulated by that access.
        """
        n = pages.shape[0]
        if n == 0:
            if warps is not None:
                self.stats.warp_instructions += n_warps
            return
        store = self._vstore
        # Headroom covers sequential prefetch candidates past the chunk
        # maximum, so no array grows (and invalidates local views) while
        # the chunk replays.
        store.ensure(int(pages.max()) + 1 + self.config.prefetch_degree)
        check_prefetched = bool(self.config.prefetch_degree)
        access = self.access
        stats = self.stats
        warp_base = stats.warp_instructions
        window = self._window
        miss_streak = 0
        i = 0
        while i < n:
            if not self.policy.hits_batchable or miss_streak >= _MISS_STREAK_LIMIT:
                # Scalar burst: either the policy observes every access,
                # or Tier-1 is thrashing and probing is pure overhead.
                # The scalar path is exact for hits and misses alike, so
                # this is a speed decision, never a semantic one.
                end = min(i + _SCALAR_STRIDE, n)
                while i < end:
                    if warps is not None:
                        stats.warp_instructions = warp_base + int(warps[i])
                    access(int(pages[i]), write=bool(writes[i]))
                    i += 1
                miss_streak = 0
                continue
            w = min(window, n - i)
            if chain is not None:
                room = chain.limit(stats.coalesced_accesses)
                if room <= 0:
                    # The next access lands on a window boundary; replay
                    # it through the scalar path so the cut captures the
                    # exact half-applied state a scalar tick would.
                    if warps is not None:
                        stats.warp_instructions = warp_base + int(warps[i])
                    access(int(pages[i]), write=bool(writes[i]))
                    i += 1
                    continue
                if room < w:
                    w = room
            chunk = pages[i : i + w]
            hits = store.loc[chunk] == _T1_CODE
            if check_prefetched:
                hits &= ~store.prefetched[chunk]
            if hits.all():
                run_len = w
            else:
                run_len = int(np.argmax(~hits))
            if run_len:
                self._batch_hits(chunk[:run_len], writes[i : i + run_len])
                i += run_len
                if warps is not None:
                    stats.warp_instructions = warp_base + int(warps[i - 1])
                if chain is not None:
                    chain.on_hits(run_len, stats.coalesced_accesses)
                miss_streak = 0
                if run_len == w:
                    window = min(window * 2, _WINDOW_MAX)
                    continue
            else:
                miss_streak += 1
            window = max(_WINDOW_MIN, window // 2)
            # The blocking access — a miss, or a prefetched page's first
            # demand touch — replays scalar.
            if warps is not None:
                stats.warp_instructions = warp_base + int(warps[i])
            access(int(pages[i]), write=bool(writes[i]))
            i += 1
        self._window = window
        if warps is not None:
            # Trailing warps with no coalesced accesses still count.
            stats.warp_instructions = warp_base + n_warps

    def _batch_hits(self, chunk: np.ndarray, writes: np.ndarray) -> None:
        """Retire ``k`` consecutive Tier-1 hits as array operations.

        Mirrors the scalar hit path exactly: one VTD tick per access with
        last-occurrence timestamps (``np.maximum.at`` is unbuffered, and
        a page's prior stamp is always <= the batch base), access-count
        bumps, stats, sequentially-rounded compute cost, queueing-model
        arrivals, dirty marks for writes, clock reference bits.
        """
        k = chunk.shape[0]
        store = self._vstore
        base = self.vts.now
        self.vts.advance(k)
        np.maximum.at(
            store.last_access,
            chunk,
            np.arange(base + 1, base + k + 1, dtype=np.int64),
        )
        np.add.at(store.access_count, chunk, 1)
        self.stats.coalesced_accesses += k
        self.stats.t1_hits += k
        self.cost.add_compute_batch(self.config.platform.gpu_access_ns, k)
        queueing = self._queueing_model()
        if queueing is not None:
            queueing.on_hits(k)
        if writes.any():
            store.dirty[chunk[writes]] = True
        self.t1_clock.touch_many(chunk)


# ----------------------------------------------------------------------
# variant factory
# ----------------------------------------------------------------------
_VARIANT_CACHE: dict[type, type] = {}


def vector_variant(runtime_cls: type) -> type:
    """The vector-engine subclass of ``runtime_cls`` (memoized).

    ``vector_variant(GMTRuntime)`` is :class:`VectorReplayEngine`;
    ``vector_variant(BamRuntime)`` is a ``VectorBamRuntime``; and so on.
    Works for any runtime whose access path is inherited unchanged from
    :class:`GMTRuntime`.
    """
    if issubclass(runtime_cls, VectorEngineMixin):
        return runtime_cls
    variant = _VARIANT_CACHE.get(runtime_cls)
    if variant is None:
        variant = type(
            "Vector" + runtime_cls.__name__,
            (VectorEngineMixin, runtime_cls),
            {"__module__": __name__},
        )
        _VARIANT_CACHE[runtime_cls] = variant
    return variant


class VectorReplayEngine(VectorEngineMixin, GMTRuntime):
    """:class:`GMTRuntime` with the SoA batch replay loop."""


_VARIANT_CACHE[GMTRuntime] = VectorReplayEngine
