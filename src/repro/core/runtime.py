"""The GMT runtime: GPU-orchestrated 3-tier demand paging (paper section 2).

One :class:`GMTRuntime` replays a workload's coalesced page-access stream
through the hierarchy:

- **hit path**: page resident in Tier-1 -> touch its clock bit, done.
- **miss path** (Figure 2): look up Tier-2 (costs ~50 ns; a miss there is
  a "wasteful lookup", Figure 10(a)); fetch from Tier-2 over PCIe via the
  configured transfer engine, or from the SSD through the GPU-resident
  NVMe queues.  The up-path always bypasses Tier-2, as in BaM ("we bypass
  host memory in the 'up'-path", section 2).
- **eviction pipeline**: when Tier-1 is full, clock nominates a victim and
  the policy decides — retain (short-reuse, bounded rounds), place into
  Tier-2 (evicting/bypassing per policy when Tier-2 is full), or bypass to
  Tier-3 (discard clean, write back dirty).

All orchestration costs are charged to the GPU-side cost model with the
GPU's fault-level parallelism — that is what "GPU-orchestrated" means for
performance, and what the HMM baseline lacks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable

from repro.core.config import GMTConfig
from repro.core.events import EventKind, RuntimeEventLog
from repro.core.placement import PlacementDecision
from repro.core.policies import PlacementPolicy, make_policy
from repro.core.stats import RuntimeStats
from repro.errors import SimulationError
from repro.mem.page import PageLocation, PageState
from repro.mem.page_table import PageTable
from repro.mem.tier import Tier
from repro.mem.tier2_order import Tier2Clock, Tier2Fifo  # noqa: F401 (re-export)
from repro.obs.lifecycle import LifecycleKind
from repro.policyzoo.registry import make_eviction_policy
from repro.reuse.vtd import VirtualTimestampClock
from repro.sim.cost import CostBreakdown, CostModel
from repro.sim.gpu import WarpAccess, coalesce
from repro.sim.nvme import NvmeSSD
from repro.sim.pcie import PCIeLink
from repro.sim.transfer import make_engine


@dataclass
class RunResult:
    """Outcome of replaying one trace through a runtime."""

    runtime_name: str
    stats: RuntimeStats
    breakdown: CostBreakdown
    page_size: int

    @property
    def elapsed_ns(self) -> float:
        return self.breakdown.elapsed_ns

    @property
    def ssd_io_bytes(self) -> int:
        return self.stats.io_bytes(self.page_size)

    def speedup_over(self, other: "RunResult") -> float:
        """``other.elapsed / self.elapsed`` — >1 means self is faster."""
        if self.elapsed_ns <= 0:
            raise SimulationError("cannot compute speedup: zero elapsed time")
        if other.elapsed_ns <= 0:
            raise SimulationError(
                "cannot compute speedup: baseline has zero elapsed time"
            )
        return other.elapsed_ns / self.elapsed_ns


class GMTRuntime:
    """GPU-orchestrated 3-tier (GPU memory / host memory / SSD) runtime.

    Args:
        config: the geometry, policy and platform to run.
        policy_factory: optional override constructing a custom
            :class:`~repro.core.policies.PlacementPolicy` from
            ``(config, stats, vts, rng)`` — used by the Belady-style
            oracle and by experiments with bespoke policies.
    """

    name = "GMT"
    #: Replay engine identity ("scalar" here; the SoA batch engine,
    #: :mod:`repro.core.vector`, overrides with "vector").  Distinct from
    #: :attr:`engine`, which is the Tier-1<->Tier-2 *transfer* engine.
    engine_name = "scalar"
    #: Why this engine was selected.  The factory
    #: (:func:`repro.core.factory.make_runtime`) stamps the resolution
    #: reason on each instance; this class default covers direct
    #: construction.
    engine_reason = "scalar reference loop (constructed directly)"
    #: Who services faults — exported as a telemetry label; the
    #: CPU-orchestrated baselines override this with ``"host"``.
    orchestration = "gpu"
    #: Extra constant labels a runtime variant wants on its metrics.
    obs_extra_labels: dict[str, str] = {}

    def __init__(self, config: GMTConfig, policy_factory=None) -> None:
        self.config = config
        platform = config.platform
        self.stats = self._make_stats()
        self.page_table = PageTable()
        self.vts = VirtualTimestampClock()
        self.rng = random.Random(config.seed)

        self.tier1 = Tier("Tier-1", config.tier1_frames)
        self.tier2 = Tier("Tier-2", config.tier2_frames)
        self.t1_clock = make_eviction_policy(
            config.tier1_eviction, config.tier1_frames, tier=1
        )

        if policy_factory is None:
            policy_factory = make_policy
        self.policy: PlacementPolicy = policy_factory(
            config, self.stats, self.vts, self.rng
        )
        if config.tier2_frames > 0:
            t2_eviction = config.tier2_eviction
            if t2_eviction is None:
                # Historical derivation: GMT-TierOrder runs a clock over
                # Tier-2, every other placement policy a plain FIFO.
                t2_eviction = "clock" if self.policy.tier2_uses_clock else "fifo"
            self._t2_order = make_eviction_policy(
                t2_eviction, config.tier2_frames, tier=2
            )
        else:
            self._t2_order = Tier2Fifo()

        self.engine = make_engine(config.transfer_engine)
        #: Amortised critical-path cost of one Tier-1<->Tier-2 page move:
        #: demand misses arrive in bursts across warps, so engine overheads
        #: (pinning, DMA descriptors) spread over a nominal batch.
        batch = config.transfer_batch_pages
        self._t2_move_ns = (
            self.engine.transfer_time_ns(batch, page_size=config.page_size) / batch
        )

        self.pcie = PCIeLink(bandwidth=platform.pcie_bandwidth)
        self.ssd = NvmeSSD(
            read_latency_ns=platform.ssd_read_latency_ns,
            write_latency_ns=platform.ssd_write_latency_ns,
            read_bandwidth=platform.ssd_read_bandwidth,
            write_bandwidth=platform.ssd_write_bandwidth,
            queue_depth=platform.nvme_queue_depth,
        )
        self.cost = CostModel(fault_concurrency=platform.gpu_fault_concurrency)
        #: Extra critical-path cost charged to every Tier-1 miss.  Zero for
        #: GPU-orchestrated runtimes; the HMM baseline sets it to the host
        #: software stack's per-fault overhead.
        self._extra_fault_ns = 0.0
        #: Optional event recorder (see :mod:`repro.core.events`).
        self._events: RuntimeEventLog | None = None
        #: Optional telemetry (see :mod:`repro.obs`).  None is the
        #: null-sink fast path: each emission point costs one attribute
        #: check and nothing else.
        self._obs = None
        #: Optional page-lifecycle flight recorder (see
        #: :mod:`repro.obs.lifecycle`).  Same discipline: None is the
        #: default and each emission site costs one attribute check.
        self._flight = None
        #: Optional phase profiler (see :mod:`repro.prof`).  None is the
        #: default; when off the hot path is the *original unwrapped*
        #: methods — attach instruments them, detach restores them, so
        #: disabled profiling costs literally nothing.
        self._prof = None
        #: Scratch: the cause/prediction behind the eviction currently in
        #: flight (set by ``_ensure_tier1_frame``, read by the placement
        #: leaves so DEMOTE/BYPASS events carry the policy's reasoning).
        self._fx_cause = ""
        self._fx_predicted: str | None = None
        #: Queueing time model, built lazily (subclasses adjust the
        #: orchestration parameters it reads after construction).
        self._queueing = None
        #: Scratch flags describing the last eviction's side effects, for
        #: the queueing model's critical-path sequencing.
        self._fx_writeback = False
        self._fx_t2_place = False
        self._fx_t2_evict = False
        #: Periodic conformance checking: when set, ``access`` runs
        #: :meth:`check_invariants` plus the stats-identity audit every
        #: this many coalesced accesses (None = never, the hot-path
        #: default — one attribute check per access, like telemetry).
        self._check_every: int | None = None
        self.name = f"GMT-{self.policy.name}"

    def engine_resolution(self) -> tuple[str, str]:
        """The replay engine the next ``run`` will use, with the reason.

        The scalar runtime always runs scalar; the vector mixin
        overrides this with the live capability negotiation (attached
        instruments can demote a vector runtime back to the scalar
        loop).  This is the surface the CLIs print (``engine=...
        (reason=...)``) and the exporters embed in headers.
        """
        return self.engine_name, self.engine_reason

    def _make_stats(self) -> RuntimeStats:
        """Counter storage for this run.  The multi-tenant serving layer
        (:mod:`repro.serve`) overrides this with a stats object that also
        mirrors increments into per-tenant slices."""
        return RuntimeStats()

    # ------------------------------------------------------------------
    # queueing time model (optional, config.time_model == "queueing")
    # ------------------------------------------------------------------
    def _queueing_model(self):
        """Build (once) and return the queueing model, or None."""
        if self.config.time_model != "queueing":
            return None
        if self._queueing is None:
            from repro.sim.queueing import QueueingModel

            self._queueing = QueueingModel(
                platform=self.config.platform,
                page_size=self.config.page_size,
                fault_concurrency=self.cost.fault_concurrency,
                extra_fault_ns=self._extra_fault_ns,
                t2_move_ns=self._t2_move_ns,
                ssd_read_bandwidth=self.ssd.read_bandwidth,
                ssd_write_bandwidth=self.ssd.write_bandwidth,
            )
        return self._queueing

    # ------------------------------------------------------------------
    # event tracing (optional)
    # ------------------------------------------------------------------
    def attach_event_log(self, capacity: int | None = None) -> RuntimeEventLog:
        """Start recording pipeline events; returns the (new) log."""
        self._events = RuntimeEventLog(capacity=capacity)
        return self._events

    def detach_event_log(self) -> None:
        self._events = None

    def _emit(self, kind: EventKind, page: int) -> None:
        if self._events is not None:
            self._events.emit(kind, page, self.vts.now)

    # ------------------------------------------------------------------
    # telemetry (optional, see repro.obs)
    # ------------------------------------------------------------------
    def obs_labels(self) -> dict[str, str]:
        """Constant labels describing this runtime for exported metrics."""
        labels = {
            "runtime": self.name,
            "policy": self.policy.name,
            "orchestration": self.orchestration,
            "tiers": "3" if self.tier2.capacity > 0 else "2",
        }
        labels.update(self.obs_extra_labels)
        return labels

    def attach_telemetry(self, telemetry=None):
        """Wire a :class:`~repro.obs.telemetry.Telemetry` (a fresh one if
        None) into the runtime's emission points; returns it."""
        if telemetry is None:
            from repro.obs.telemetry import Telemetry

            telemetry = Telemetry()
        self._obs = telemetry.attach(self)
        return telemetry

    def detach_telemetry(self) -> None:
        """Return to the null-sink fast path (telemetry keeps its data)."""
        if self._obs is not None:
            self._obs.detach()
            self._obs = None

    # ------------------------------------------------------------------
    # page-lifecycle flight recorder (optional, see repro.obs.lifecycle)
    # ------------------------------------------------------------------
    def attach_flight_recorder(self, capacity: int | None = 100_000, recorder=None):
        """Start recording page-lifecycle events; returns the recorder.

        Standalone alternative to ``attach_telemetry(Telemetry(lifecycle=...))``
        when only the lifecycle log is wanted.  Bounded drop-oldest ring;
        detach with :meth:`detach_flight_recorder`.
        """
        if recorder is None:
            from repro.obs.lifecycle import LifecycleRecorder

            recorder = LifecycleRecorder(capacity=capacity)
        if recorder.clock is None:
            cost = self.cost
            recorder.clock = lambda: cost.compute_ns + cost.fault_latency_ns
        self._flight = recorder
        return recorder

    def detach_flight_recorder(self) -> None:
        """Stop lifecycle recording (the recorder keeps its events)."""
        self._flight = None

    # ------------------------------------------------------------------
    # phase profiling (optional, see repro.prof)
    # ------------------------------------------------------------------
    def attach_profiler(self, profiler=None):
        """Instrument the phase boundaries with a
        :class:`~repro.prof.PhaseProfiler` (a fresh one if None); returns
        the profiler.  Detach with :meth:`detach_profiler`."""
        if profiler is None:
            from repro.prof import PhaseProfiler

            profiler = PhaseProfiler()
        profiler.attach(self)
        return profiler

    def detach_profiler(self) -> None:
        """Restore the unwrapped hot path (the profiler keeps its data)."""
        if self._prof is not None:
            self._prof.detach()

    # ------------------------------------------------------------------
    # periodic conformance checking (optional, see repro.check)
    # ------------------------------------------------------------------
    def enable_periodic_checks(self, every: int | None = 10_000) -> None:
        """Audit the runtime every ``every`` coalesced accesses.

        Each audit runs :meth:`check_invariants` (structural: capacities,
        no page resident in two tiers, page-table/membership agreement)
        plus the stats-identity catalogue
        (:func:`repro.check.identities.assert_conformant`).  ``None``
        disables and restores the null-sink fast path.
        """
        if every is not None and every < 1:
            raise SimulationError(f"check interval must be >= 1, got {every}")
        self._check_every = every

    def _periodic_check(self) -> None:
        from repro.check.identities import assert_conformant

        assert_conformant(self)

    # ------------------------------------------------------------------
    # access path
    # ------------------------------------------------------------------
    def run(self, trace: Iterable[WarpAccess]) -> RunResult:
        """Replay a trace of warp accesses and return the run's result."""
        for warp in trace:
            self.access_warp(warp)
        if self._obs is not None:
            # Flush the final partial snapshot window; without this the
            # tail of the replay drops out of telemetry.windows().
            self._obs.finish()
        return self.result()

    def access_warp(self, warp: WarpAccess) -> None:
        """Issue one warp memory instruction (coalesced per 64 KB page)."""
        self.stats.warp_instructions += 1
        for page in coalesce(warp):
            self.access(page, write=warp.write)

    def access(self, page: int, write: bool = False) -> None:
        """One coalesced access to ``page``."""
        if (
            self._check_every is not None
            and self.stats.coalesced_accesses
            and self.stats.coalesced_accesses % self._check_every == 0
        ):
            # Audit between accesses: the previous access fully settled,
            # this one has not touched any counter yet.
            self._periodic_check()
        state = self.page_table.lookup(page)
        vtd = self.vts.observe_access(state)
        self.policy.on_access(state, vtd)
        self.stats.coalesced_accesses += 1
        platform = self.config.platform
        self.cost.add_compute(platform.gpu_access_ns)

        queueing = self._queueing_model()
        obs = self._obs
        if obs is not None:
            obs.tick(self.stats.coalesced_accesses)

        if state.location is PageLocation.TIER1:
            if queueing is not None:
                queueing.on_hit()
            self._emit(EventKind.T1_HIT, page)
            self.stats.t1_hits += 1
            self.t1_clock.touch(page)
            if write:
                state.mark_dirty()
            if state.prefetched:
                # First demand access to a prefetched page: account the
                # hit and run the deferred fill bookkeeping (Markov
                # resolution happens at demand time, not prefetch time).
                state.prefetched = False
                self.stats.prefetch_hits += 1
                self.policy.on_tier1_fill(state, from_tier2=False)
            return

        # ---- demand miss --------------------------------------------------
        self._emit(EventKind.MISS, page)
        self.stats.t1_misses += 1
        fault_ns = self._extra_fault_ns
        from_tier2 = False
        if self.tier2.capacity > 0:
            self._emit(EventKind.T2_LOOKUP, page)
            self.stats.t2_lookups += 1
            fault_ns += platform.tier2_lookup_ns
            if state.location is PageLocation.TIER2:
                from_tier2 = True
            else:
                self.stats.t2_wasteful_lookups += 1
            if obs is not None:
                obs.span("t2-lookup", "tier2", platform.tier2_lookup_ns,
                         page=page, hit=from_tier2)

        if from_tier2:
            self._emit(EventKind.T2_HIT, page)
            self.stats.t2_hits += 1
            self.stats.t2_fetches += 1
            self.tier2.remove(page)
            self._t2_order.remove(page)
            self.pcie.record_h2d(self.config.page_size)
            stall_ns = self._promotion_stall_ns(page)
            if stall_ns > 0.0:
                # Migration governor: the promotion itself cannot be
                # refused (the faulting warp needs the page, and exclusive
                # tiering forbids a host copy), so it queues behind the
                # throttle instead.
                self.stats.promotions_throttled += 1
            fault_ns += platform.host_fetch_latency_ns + self._t2_move_ns + stall_ns
            if obs is not None:
                obs.span("t2-fetch", "tier2",
                         platform.host_fetch_latency_ns + self._t2_move_ns + stall_ns,
                         page=page)
            if self._flight is not None:
                self._flight.emit(
                    LifecycleKind.PROMOTE, page, self.stats.coalesced_accesses,
                    "T2", "T1", "demand-miss",
                    latency_ns=platform.host_fetch_latency_ns + self._t2_move_ns,
                )
        else:
            # Up-path bypasses Tier-2: SSD -> GPU memory directly.
            self._emit(EventKind.SSD_READ, page)
            self.ssd.record_read(self.config.page_size)
            self.stats.ssd_page_reads += 1
            state.dirty = False  # fresh copy of the SSD contents
            fault_ns += platform.ssd_read_latency_ns
            if obs is not None:
                obs.span("ssd-read", "ssd", platform.ssd_read_latency_ns, page=page)
            if self._flight is not None:
                self._flight.emit(
                    LifecycleKind.ADMIT, page, self.stats.coalesced_accesses,
                    "T3", "T1", "demand-miss",
                    latency_ns=platform.ssd_read_latency_ns,
                )

        eviction_ns = self._ensure_tier1_frame()
        if not self.config.async_evictions:
            # Demand-miss path waits for the frame to be freed; with
            # background orchestration (paper section 5, future work) the
            # eviction work overlaps with other faults instead.
            fault_ns += eviction_ns

        if queueing is not None:
            if self.config.async_evictions:
                if self._fx_writeback:
                    queueing.on_background_io(self.config.page_size, write=True)
                if self._fx_t2_place:
                    queueing.on_background_pcie(self.config.page_size)
                sync_writeback = sync_place = sync_evict = False
            else:
                sync_writeback = self._fx_writeback
                sync_place = self._fx_t2_place
                sync_evict = self._fx_t2_evict
            queueing.on_miss(
                tier2_lookup=self.tier2.capacity > 0,
                tier2_hit=from_tier2,
                writeback=sync_writeback,
                tier2_place=sync_place,
                tier2_evict=sync_evict,
            )

        self._emit(EventKind.T1_FILL, page)
        self.tier1.insert(page)
        self.t1_clock.insert(page, referenced=True)
        state.location = PageLocation.TIER1
        state.prefetched = False
        if write:
            state.dirty = True
        self.policy.on_tier1_fill(state, from_tier2=from_tier2)
        self.cost.add_fault_latency(fault_ns)
        if obs is not None:
            obs.on_miss(page, fault_ns, "tier2" if from_tier2 else "ssd")

        if self.config.prefetch_degree and not from_tier2:
            self._prefetch_after(page)

    # ------------------------------------------------------------------
    # prefetching (optional)
    # ------------------------------------------------------------------
    def _prefetch_after(self, page: int) -> None:
        """Pull the next sequential pages in with the demand miss.

        Prefetches ride alongside the demand read (SSD bandwidth is
        accounted; the demand miss does not wait), enter the clock with
        their reference bit clear so unused ones are evicted first, and
        defer policy fill bookkeeping to their first demand access.

        The window never crosses ``config.footprint_pages``: pages past
        the workload's address space do not exist, so reading them would
        fabricate page-table entries and phantom SSD traffic.
        """
        stop = page + 1 + self.config.prefetch_degree
        if self.config.footprint_pages is not None:
            stop = min(stop, self.config.footprint_pages)
        for candidate in range(page + 1, stop):
            state = self.page_table.lookup(candidate)
            if state.location is not PageLocation.TIER3:
                continue
            self.stats.prefetches_issued += 1
            self._emit(EventKind.PREFETCH, candidate)
            if self._obs is not None:
                self._obs.instant("prefetch", "ssd", page=candidate)
            if self._flight is not None:
                self._flight.emit(
                    LifecycleKind.ADMIT, candidate, self.stats.coalesced_accesses,
                    "T3", "T1", "prefetch",
                )
            self.ssd.record_read(self.config.page_size)
            self.stats.ssd_page_reads += 1
            queueing = self._queueing_model()
            if queueing is not None:
                queueing.on_background_io(self.config.page_size)
            eviction_ns = self._ensure_tier1_frame()
            if not self.config.async_evictions:
                self.cost.add_fault_latency(eviction_ns)
            if queueing is not None:
                # The eviction making room for this prefetch happens off
                # every demand miss's critical path, but its traffic still
                # occupies the shared links: dirty victims write to the
                # SSD, Tier-2 placements cross PCIe.
                if self._fx_writeback:
                    queueing.on_background_io(self.config.page_size, write=True)
                if self._fx_t2_place:
                    queueing.on_background_pcie(self.config.page_size)
            self.tier1.insert(candidate)
            self.t1_clock.insert(candidate, referenced=False)
            state.location = PageLocation.TIER1
            state.dirty = False
            state.prefetched = True

    # ------------------------------------------------------------------
    # eviction pipeline
    # ------------------------------------------------------------------
    def _tier1_needs_eviction(self) -> bool:
        """Whether the next Tier-1 fill must first free a frame.

        The base runtime evicts only when the tier is physically full;
        the serving layer also evicts when the filling tenant has reached
        its Tier-1 frame quota.
        """
        return self.tier1.full

    def _next_tier1_victim(self) -> int:
        """Nominate the next Tier-1 eviction candidate (clock sweep).

        Hook for quota-aware victim selection: the serving layer restricts
        the sweep to an over-budget tenant's own pages.
        """
        return self.t1_clock.select_victim()

    def _ensure_tier1_frame(self) -> float:
        """Free one Tier-1 frame if needed; returns critical-path ns spent."""
        # Reset the eviction scratch unconditionally, *before* the
        # no-eviction early return: both the side-effect flags read by the
        # queueing model and the cause/prediction stamps read by the
        # lifecycle leaves must describe *this* call, never a previous
        # eviction's (demand, prefetch and quota paths all land here).
        self._fx_writeback = False
        self._fx_t2_place = False
        self._fx_t2_evict = False
        self._fx_cause = ""
        self._fx_predicted = None
        if not self._tier1_needs_eviction():
            return 0.0

        retries = 0
        overridden = False
        while True:
            victim = self._next_tier1_victim()
            vstate = self.page_table.lookup(victim)
            plan = self.policy.choose(vstate)
            if plan.decision is not PlacementDecision.RETAIN_TIER1:
                break
            if retries >= self.config.max_clock_retries:
                # Progress guarantee: a retained victim must eventually go
                # somewhere; the nearest tier below is host memory.
                self.stats.retention_overrides += 1
                overridden = True
                plan = _force_tier2(plan)
                break
            self.stats.clock_retentions += 1
            self._emit(EventKind.RETAIN, victim)
            if self._flight is not None:
                self._flight.emit(
                    LifecycleKind.RETAIN, victim, self.stats.coalesced_accesses,
                    "T1", "T1", "short-reuse-second-chance",
                    predicted=_predicted_name(plan),
                )
            self.t1_clock.insert(victim, referenced=True)
            retries += 1

        self._emit(EventKind.EVICT_T1, victim)
        self.tier1.remove(victim)
        vstate.location = PageLocation.TIER3  # provisional; updated below
        self.stats.t1_evictions += 1
        if vstate.prefetched:
            vstate.prefetched = False
            self.stats.prefetch_wasted += 1
        self.policy.on_evicted(vstate, plan)
        if plan.forced_tier2:
            self.stats.forced_t2_placements += 1

        # Stamp the decision's reasoning for the lifecycle leaves below.
        # Unconditional (not gated on the flight recorder) so the scratch
        # is always trustworthy — conformance audits read it too.
        self._fx_predicted = _predicted_name(plan)
        if plan.forced_tier2:
            self._fx_cause = "heuristic-forced-tier2"
        elif overridden:
            self._fx_cause = "retention-override"
        elif plan.from_fallback:
            self._fx_cause = "cold-fallback"
        elif plan.predicted_class is not None:
            self._fx_cause = f"predicted-{self._fx_predicted}"
        else:
            self._fx_cause = "policy-static"

        if plan.decision is PlacementDecision.PLACE_TIER2 and self.tier2.capacity > 0:
            allow_eviction = self.policy.tier2_evicts_on_full and not plan.forced_tier2
            ns = self._place_in_tier2(vstate, allow_eviction)
        else:
            ns = self._bypass_to_tier3(vstate)
        obs = self._obs
        if obs is not None:
            obs.span("evict", "evict", ns, victim=victim,
                     decision=plan.decision.name, retries=retries)
        return ns

    def _place_in_tier2(self, state: PageState, allow_eviction: bool = True) -> float:
        """Move an evicted Tier-1 page into host memory.

        ``allow_eviction=False`` implements the free-slot-only placement of
        heuristic-forced (section 2.2) insertions: a page force-placed
        despite a Tier-3 prediction must not displace a resident — every
        Tier-2 resident was placed with at least as strong a claim.
        """
        if not self._admit_tier2(state):
            # Migration admission control (the serving layer's per-tenant
            # Tier-2 quotas): the page is denied a host-memory frame and
            # takes the Tier-3 bypass path instead.
            self.stats.t2_quota_denials += 1
            self._fx_cause = "t2-quota-denied"
            return self._bypass_to_tier3(state)
        if not self._admit_demotion(state):
            # Migration governor: the tenant is out of migration tokens,
            # so the demotion skips the host tier (no Tier-2 frame, no
            # PCIe writeback pressure) and bypasses straight to Tier-3.
            self.stats.demotions_throttled += 1
            self._fx_cause = "migration-throttled"
            return self._bypass_to_tier3(state)
        ns = 0.0
        if self.tier2.full:
            if not allow_eviction:
                self.stats.t2_full_bypasses += 1
                self._fx_cause = "t2-full-bypass"
                return self._bypass_to_tier3(state)
            ns += self._evict_from_tier2()

        self._emit(EventKind.PLACE_T2, state.page)
        self._fx_t2_place = True
        self.tier2.insert(state.page)
        # Demoted pages arrive cold regardless of the policy's default.
        self._t2_order.insert(state.page, referenced=False)
        state.location = PageLocation.TIER2
        self.stats.t2_placements += 1
        self.pcie.record_d2h(self.config.page_size)
        ns += self._t2_move_ns
        obs = self._obs
        if obs is not None:
            obs.span("place-t2", "tier2", self._t2_move_ns, page=state.page)
        if self._flight is not None:
            self._flight.emit(
                LifecycleKind.DEMOTE, state.page, self.stats.coalesced_accesses,
                "T1", "T2", self._fx_cause, predicted=self._fx_predicted,
                dirty=state.dirty, latency_ns=self._t2_move_ns,
            )
        return ns

    def _admit_tier2(self, state: PageState) -> bool:
        """Whether ``state`` may consume a Tier-2 frame (admission hook).

        Always true for the base runtime; the serving layer denies
        placement when the page's tenant is over its Tier-2 quota.
        """
        return True

    def _admit_demotion(self, state: PageState) -> bool:
        """Whether the migration governor admits this Tier-1->Tier-2
        demotion (rate-limit hook).

        Always true for the base runtime; the serving layer spends a
        token from the owning tenant's bucket when a
        :class:`~repro.policyzoo.governor.MigrationGovernor` is active.
        """
        return True

    def _promotion_stall_ns(self, page: int) -> float:
        """Extra fault latency the migration governor charges a
        Tier-2->Tier-1 promotion (0.0 = unthrottled, the base default)."""
        return 0.0

    def _select_tier2_victim(self) -> int:
        """Nominate the Tier-2 eviction victim (FIFO/clock order hook)."""
        return self._t2_order.select_victim()

    def _evict_from_tier2(self) -> float:
        """Make room in Tier-2 (FIFO, or clock under GMT-TierOrder)."""
        victim = self._select_tier2_victim()
        self._emit(EventKind.T2_EVICT, victim)
        self._fx_t2_evict = True
        self.tier2.remove(victim)
        vstate = self.page_table.lookup(victim)
        vstate.location = PageLocation.TIER3
        self.stats.t2_evictions += 1
        obs = self._obs
        if obs is not None:
            obs.span("t2-evict", "tier2",
                     self.config.platform.tier2_eviction_ns, page=victim)
        if self._flight is not None:
            self._flight.emit(
                LifecycleKind.T2_EVICT, victim, self.stats.coalesced_accesses,
                "T2", "T3", "tier2-capacity", dirty=vstate.dirty,
                latency_ns=self.config.platform.tier2_eviction_ns,
            )
        # Running the Tier-2 replacement mechanism is itself GPU work over
        # host-resident metadata (section 2.1.1's third drawback).
        writeback_ns = self._writeback_if_dirty(vstate)
        if writeback_ns == 0.0:
            self.stats.t2_clean_evictions += 1
        return self.config.platform.tier2_eviction_ns + writeback_ns

    def _bypass_to_tier3(self, state: PageState) -> float:
        """Evict without a Tier-2 copy: discard clean, write back dirty."""
        self._emit(EventKind.BYPASS_T3, state.page)
        state.location = PageLocation.TIER3
        if self._flight is not None:
            self._flight.emit(
                LifecycleKind.BYPASS, state.page, self.stats.coalesced_accesses,
                "T1", "T3", self._fx_cause, predicted=self._fx_predicted,
                dirty=state.dirty,
                detail="writeback-dirty" if state.dirty else "discard-clean",
            )
        ns = self._writeback_if_dirty(state)
        if ns == 0.0:
            self._emit(EventKind.DISCARD, state.page)
            self.stats.clean_discards += 1
        return ns

    def _writeback_if_dirty(self, state: PageState) -> float:
        if not state.dirty:
            return 0.0
        self._emit(EventKind.WRITEBACK, state.page)
        self._fx_writeback = True
        self.ssd.record_write(self.config.page_size)
        self.stats.ssd_page_writes += 1
        state.writeback()
        obs = self._obs
        if obs is not None:
            obs.span("writeback", "ssd",
                     self.config.platform.ssd_write_latency_ns, page=state.page)
        if self._flight is not None:
            self._flight.emit(
                LifecycleKind.WRITEBACK, state.page, self.stats.coalesced_accesses,
                "-", "T3", "dirty-writeback",
                latency_ns=self.config.platform.ssd_write_latency_ns,
            )
        return self.config.platform.ssd_write_latency_ns

    # ------------------------------------------------------------------
    def result(self) -> RunResult:
        """Snapshot the run outcome (can be called repeatedly)."""
        breakdown = self.cost.breakdown(
            pcie_busy_ns=self.pcie.busy_time_ns(),
            ssd_busy_ns=self.ssd.busy_time_ns(),
        )
        if self._queueing is not None:
            breakdown = replace(breakdown, measured_ns=self._queueing.makespan_ns)
        return RunResult(
            runtime_name=self.name,
            stats=self.stats,
            breakdown=breakdown,
            page_size=self.config.page_size,
        )

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structural invariants; used by tests and property checks."""
        if len(self.tier1) > self.tier1.capacity:
            raise SimulationError("Tier-1 over capacity")
        if len(self.tier2) > self.tier2.capacity:
            raise SimulationError("Tier-2 over capacity")
        t1_pages = set(self.tier1)
        t2_pages = set(self.tier2)
        if t1_pages & t2_pages:
            raise SimulationError(
                f"pages duplicated across tiers: {sorted(t1_pages & t2_pages)[:5]}"
            )
        for page in t1_pages | t2_pages:
            if self.page_table.peek(page) is None:
                raise SimulationError(
                    f"page {page} resident in a tier but unknown to the page table"
                )
        for state in self.page_table:
            in_t1 = state.page in t1_pages
            in_t2 = state.page in t2_pages
            expected = (
                PageLocation.TIER1
                if in_t1
                else PageLocation.TIER2
                if in_t2
                else PageLocation.TIER3
            )
            if state.location is not expected:
                raise SimulationError(
                    f"page {state.page}: location {state.location} but "
                    f"membership says {expected}"
                )


def _force_tier2(plan):
    """Rewrite a RETAIN plan whose retry budget ran out into a Tier-2 plan."""
    return replace(plan, decision=PlacementDecision.PLACE_TIER2)


def _predicted_name(plan) -> str | None:
    """Lower-case reuse-class name behind a plan (None = no prediction)."""
    return None if plan.predicted_class is None else plan.predicted_class.name.lower()
