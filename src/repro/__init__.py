"""GMT: GPU Orchestrated Memory Tiering for the Big Data Era — reproduction.

A simulation-based reproduction of Chang et al., ASPLOS 2024.  The public
API mirrors the paper's structure:

>>> from repro import GMTConfig, GMTRuntime, BamRuntime
>>> from repro.workloads import make_workload
>>> config = GMTConfig.paper_default()
>>> trace = list(make_workload("pagerank", config))
>>> gmt = GMTRuntime(config.with_policy("reuse")).run(trace)
>>> bam = BamRuntime(config).run(trace)
>>> gmt.speedup_over(bam)  # doctest: +SKIP
1.2...

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results of every table and figure.
"""

from repro.baselines import BamRuntime, DragonRuntime, HmmRuntime
from repro.core import GMTConfig, GMTRuntime, RunResult, RuntimeStats
from repro.sim import PlatformModel, WarpAccess
from repro.units import PAGE_SIZE

__version__ = "1.0.0"

__all__ = [
    "BamRuntime",
    "DragonRuntime",
    "GMTConfig",
    "GMTRuntime",
    "HmmRuntime",
    "PAGE_SIZE",
    "PlatformModel",
    "RunResult",
    "RuntimeStats",
    "WarpAccess",
    "__version__",
]
