"""Instrumented-run workload characterisation (Table 2, Figures 4 and 7).

The paper grounds its policy design in "instrumented runs" that record
exact reuse distances, VTDs, and the remaining reuse distance (RRD) of
every Tier-1 eviction.  This module is that instrumentation, applied to
the coalesced page stream of any workload:

- :func:`characterize_workload` -> reuse %, total I/O, access counts
  (Table 2's columns);
- :func:`vtd_rd_correlation` -> (VTD, RD) sample pairs + their linear fit
  (Figure 4(a), the justification for Eq. 2);
- :func:`collect_eviction_rrds` -> the RRD of each clock eviction from a
  simulated Tier-1, per page and in aggregate (Figures 4(b), 4(c), 7).

The distinct-pages-in-interval queries behind RRDs use the classic offline
sweep with a Fenwick tree over last-occurrence positions — O((N+Q) log N).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.mem.clock_replacement import ClockReplacement
from repro.reuse.classifier import ReuseClass, RRDClassifier
from repro.reuse.distance import ReuseDistanceTracker, _FenwickTree
from repro.reuse.regression import LinearModel, fit_ols
from repro.units import GiB
from repro.workloads.trace import Workload


# ---------------------------------------------------------------------------
# Table 2: reuse percentage and total I/O
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Table 2's per-application columns, measured from the trace."""

    name: str
    coalesced_accesses: int
    distinct_pages: int
    reused_pages: int
    write_accesses: int

    @property
    def reuse_percent(self) -> float:
        """"Reuse % of a Page": share of pages accessed more than once."""
        if not self.distinct_pages:
            return 0.0
        return 100.0 * self.reused_pages / self.distinct_pages

    def total_io_bytes(self, page_size: int) -> int:
        """Table 2's "Total I/O": all data the kernel demands, in bytes."""
        return self.coalesced_accesses * page_size

    def total_io_gb(self, page_size: int) -> float:
        return self.total_io_bytes(page_size) / GiB


def characterize_workload(workload: Workload) -> WorkloadCharacteristics:
    """One instrumented pass over ``workload``'s coalesced stream."""
    counts: dict[int, int] = defaultdict(int)
    accesses = 0
    writes = 0
    for warp in workload:
        seen: set[int] = set()
        for page in warp.pages:
            if page in seen:
                continue
            seen.add(page)
            counts[page] += 1
            accesses += 1
            if warp.write:
                writes += 1
    reused = sum(1 for c in counts.values() if c > 1)
    return WorkloadCharacteristics(
        name=workload.name,
        coalesced_accesses=accesses,
        distinct_pages=len(counts),
        reused_pages=reused,
        write_accesses=writes,
    )


# ---------------------------------------------------------------------------
# Figure 4(a): VTD vs reuse distance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VtdRdCorrelation:
    """Sampled (VTD, RD) pairs with their OLS fit and Pearson r."""

    vtds: list[int]
    rds: list[int]
    model: LinearModel
    pearson_r: float

    @property
    def samples(self) -> int:
        return len(self.vtds)


def vtd_rd_correlation(
    workload: Workload, max_samples: int | None = None
) -> VtdRdCorrelation:
    """Instrument the trace to pair each access's VTD with its exact RD.

    Reproduces Figure 4(a)'s scatter; the paper's observation is that the
    relation is close to linear, which :attr:`VtdRdCorrelation.pearson_r`
    quantifies.
    """
    tracker = ReuseDistanceTracker()
    last_ts: dict[int, int] = {}
    now = 0
    vtds: list[int] = []
    rds: list[int] = []
    for page in workload.coalesced_pages():
        now += 1
        rd = tracker.record(page)
        prev = last_ts.get(page)
        last_ts[page] = now
        if rd is None or prev is None:
            continue
        vtds.append(now - prev)
        rds.append(rd)
        if max_samples is not None and len(vtds) >= max_samples:
            break
    if len(vtds) < 2:
        raise TraceError(f"{workload.name}: not enough reuse to correlate VTD and RD")
    model = fit_ols([float(v) for v in vtds], [float(r) for r in rds])
    return VtdRdCorrelation(
        vtds=vtds, rds=rds, model=model, pearson_r=_pearson(vtds, rds)
    )


def _pearson(xs: list[int], ys: list[int]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


# ---------------------------------------------------------------------------
# Figure 7: reuse-distance distribution of accesses
# ---------------------------------------------------------------------------


@dataclass
class AccessRDAnalysis:
    """Distribution of exact reuse distances over a trace's *accesses*.

    Figure 7 plots, per application, where reuses fall relative to the
    Tier-1 and Tier-1+Tier-2 capacity lines: "if the distances are (a)
    very small (to fit in GPU memory itself), the hierarchy would not help
    much; or (b) very large (exceeding the GPU+Host memory capacities),
    the data is more likely to be in the SSD".
    """

    class_counts: dict[ReuseClass, int] = field(default_factory=dict)
    finite_reuses: int = 0
    cold_accesses: int = 0
    #: Sorted sample of reuse distances (for histograms/percentiles).
    rd_sample: list[int] = field(default_factory=list)

    def class_fractions(self) -> dict[ReuseClass, float]:
        """Share of (finite-RD) reuses per Eq. 1 class — the tier bias."""
        if not self.finite_reuses:
            return {cls: 0.0 for cls in ReuseClass}
        return {
            cls: self.class_counts.get(cls, 0) / self.finite_reuses
            for cls in ReuseClass
        }

    def percentile(self, q: float) -> int:
        """q-quantile (0..1) of the sampled reuse distances."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.rd_sample:
            raise ValueError("no reuse distances sampled")
        idx = min(len(self.rd_sample) - 1, int(q * len(self.rd_sample)))
        return self.rd_sample[idx]


def collect_access_rds(
    workload: Workload,
    tier1_frames: int,
    tier2_frames: int,
    sample_stride: int = 1,
) -> AccessRDAnalysis:
    """Exact reuse distance of every access, classified per Eq. 1.

    ``sample_stride`` keeps every n-th distance in :attr:`rd_sample`
    (class counts always cover all reuses).
    """
    if sample_stride < 1:
        raise TraceError(f"sample_stride must be >= 1, got {sample_stride}")
    classifier = RRDClassifier(tier1_frames, tier2_frames)
    tracker = ReuseDistanceTracker()
    analysis = AccessRDAnalysis()
    for i, page in enumerate(workload.coalesced_pages()):
        rd = tracker.record(page)
        if rd is None:
            analysis.cold_accesses += 1
            continue
        analysis.finite_reuses += 1
        cls = classifier.classify(rd)
        analysis.class_counts[cls] = analysis.class_counts.get(cls, 0) + 1
        if i % sample_stride == 0:
            analysis.rd_sample.append(rd)
    analysis.rd_sample.sort()
    return analysis


# ---------------------------------------------------------------------------
# Figures 4(b), 4(c): RRD at Tier-1 evictions
# ---------------------------------------------------------------------------


@dataclass
class EvictionRRDAnalysis:
    """Exact remaining reuse distances of simulated Tier-1 clock evictions.

    Attributes:
        rrds: one entry per eviction whose page is accessed again:
            (page, rrd).  Eviction order is preserved, so a page's
            successive entries give Figure 4(b)/(c)'s per-page series.
        never_reused_evictions: evictions whose page never returns
            (infinite RRD; Figure 7 lumps these beyond the Tier-2 line).
        class_counts: ReuseClass -> eviction count (never-reused counts
            as LONG), given the classifier used.
    """

    rrds: list[tuple[int, int]] = field(default_factory=list)
    never_reused_evictions: int = 0
    class_counts: dict[ReuseClass, int] = field(default_factory=dict)

    @property
    def total_evictions(self) -> int:
        return len(self.rrds) + self.never_reused_evictions

    def class_fractions(self) -> dict[ReuseClass, float]:
        """Share of evictions per Eq. 1 class — Figure 7's tier bias."""
        total = self.total_evictions
        if not total:
            return {cls: 0.0 for cls in ReuseClass}
        return {
            cls: self.class_counts.get(cls, 0) / total for cls in ReuseClass
        }

    def per_page_series(self, page: int) -> list[int]:
        """RRDs of ``page``'s successive evictions (Figure 4(b)/(c))."""
        return [rrd for p, rrd in self.rrds if p == page]


def collect_eviction_rrds(
    workload: Workload, tier1_frames: int, tier2_frames: int = 0
) -> EvictionRRDAnalysis:
    """Replay the trace through a clock-managed Tier-1 and compute the
    exact RRD of every eviction.

    ``tier2_frames`` only affects Eq. 1's medium/long boundary in the
    class counts (Figure 7's second vertical line).
    """
    if tier1_frames <= 0:
        raise TraceError(f"tier1_frames must be positive, got {tier1_frames}")
    pages = list(workload.coalesced_pages())
    positions: dict[int, list[int]] = defaultdict(list)
    for pos, page in enumerate(pages):
        positions[page].append(pos)

    # Pass 1: simulate the clock, recording (eviction position, page).
    clock = ClockReplacement(tier1_frames)
    evictions: list[tuple[int, int]] = []
    for pos, page in enumerate(pages):
        if page in clock:
            clock.touch(page)
            continue
        if clock.full:
            evictions.append((pos, clock.select_victim()))
        clock.insert(page, referenced=True)

    # Build interval queries (evict_pos, next_access_pos) per eviction.
    analysis = EvictionRRDAnalysis()
    classifier = RRDClassifier(tier1_frames, tier2_frames)
    queries: list[tuple[int, int, int, int]] = []  # (j, i, page, query_id)
    for query_id, (evict_pos, page) in enumerate(evictions):
        plist = positions[page]
        nxt = bisect.bisect_left(plist, evict_pos)
        if nxt == len(plist):
            analysis.never_reused_evictions += 1
            cls = ReuseClass.LONG
            analysis.class_counts[cls] = analysis.class_counts.get(cls, 0) + 1
            continue
        queries.append((plist[nxt], evict_pos, page, query_id))

    # Pass 2: offline distinct-count sweep.  BIT over positions, marking
    # each page at its most recent occurrence; distinct pages in (i, j) =
    # prefix(j-1+1) - prefix(i+1) with 1-based BIT indices.
    queries.sort()
    results: list[tuple[int, int, int]] = []  # (query_id, page, rrd)
    tree = _FenwickTree(len(pages) + 1)
    last_pos: dict[int, int] = {}
    qi = 0
    for pos, page in enumerate(pages):
        prev = last_pos.get(page)
        if prev is not None:
            tree.add(prev + 1, -1)
        tree.add(pos + 1, 1)
        last_pos[page] = pos
        # Answer queries whose next-access position j == pos: count
        # distinct pages at positions (i, j) exclusive of j's own access —
        # use prefix sums up to j-1 (i.e. pos, 1-based) minus up to i.
        while qi < len(queries) and queries[qi][0] == pos:
            j, i, qpage, query_id = queries[qi]
            qi += 1
            rrd = tree.prefix_sum(pos) - tree.prefix_sum(i + 1)
            if rrd < 0:
                raise AssertionError("negative distinct count")
            results.append((query_id, qpage, rrd))

    results.sort()
    for _, page, rrd in results:
        analysis.rrds.append((page, rrd))
        cls = classifier.classify(rrd)
        analysis.class_counts[cls] = analysis.class_counts.get(cls, 0) + 1
    return analysis
