"""Miss-ratio curves and analytic tier planning (Mattson stack analysis).

An LRU cache of capacity ``c`` hits an access exactly when its reuse
distance is below ``c``, so one pass collecting exact reuse distances
(:mod:`repro.reuse.distance`) yields the *whole* miss-ratio curve at once —
Mattson's classic stack algorithm.  On top of the curve this module builds
the capacity-planning questions a GMT deployment asks:

- how big must Tier-1/Tier-2 be for a target hit ratio?
- what is the expected fault cost per access (AMAT) for a given 3-tier
  geometry — the analytic counterpart of Figure 12's capacity sweep?

The curve is an idealised LRU bound (the runtime's clock + policies add
their own effects), which is exactly what makes it useful for sizing
before running full simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.reuse.distance import ReuseDistanceTracker
from repro.sim.latency import PlatformModel
from repro.workloads.trace import Workload


@dataclass(frozen=True)
class MissRatioCurve:
    """Exact LRU miss-ratio curve of one trace.

    Attributes:
        rd_counts: ``rd_counts[d]`` = number of accesses with reuse
            distance exactly ``d`` (cold/first accesses excluded).
        cold_accesses: accesses with no prior reference (always misses).
        total_accesses: all coalesced accesses.
    """

    rd_counts: np.ndarray
    cold_accesses: int
    total_accesses: int

    @property
    def finite_reuses(self) -> int:
        return self.total_accesses - self.cold_accesses

    def hits_at(self, capacity: int) -> int:
        """Accesses an LRU cache of ``capacity`` pages would hit."""
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        if capacity == 0:
            return 0
        upto = min(capacity, len(self.rd_counts))
        return int(self.rd_counts[:upto].sum())

    def hit_ratio(self, capacity: int) -> float:
        if not self.total_accesses:
            return 0.0
        return self.hits_at(capacity) / self.total_accesses

    def miss_ratio(self, capacity: int) -> float:
        return 1.0 - self.hit_ratio(capacity)

    def curve(self, capacities: list[int]) -> list[tuple[int, float]]:
        """(capacity, miss ratio) points for plotting/reporting."""
        return [(c, self.miss_ratio(c)) for c in capacities]

    def capacity_for_hit_ratio(self, target: float) -> int | None:
        """Smallest capacity whose hit ratio reaches ``target``.

        Returns ``None`` when no capacity suffices (cold misses bound the
        achievable hit ratio from above).
        """
        if not 0.0 <= target <= 1.0:
            raise ValueError(f"target must be in [0, 1]: {target}")
        if not self.total_accesses:
            return None
        achievable = self.finite_reuses / self.total_accesses
        if target > achievable:
            return None
        cumulative = np.cumsum(self.rd_counts)
        needed = target * self.total_accesses
        idx = int(np.searchsorted(cumulative, needed - 1e-9))
        return idx + 1

    # ------------------------------------------------------------------
    def tier_hit_fractions(
        self, tier1_frames: int, tier2_frames: int
    ) -> tuple[float, float, float]:
        """(Tier-1 hits, Tier-2 hits, SSD misses) as access fractions for
        an inclusive-LRU idealisation of the 3-tier hierarchy."""
        h1 = self.hit_ratio(tier1_frames)
        h12 = self.hit_ratio(tier1_frames + tier2_frames)
        return h1, h12 - h1, 1.0 - h12

    def expected_fault_ns(
        self,
        tier1_frames: int,
        tier2_frames: int,
        platform: PlatformModel | None = None,
    ) -> float:
        """Average fault cost per access (AMAT-style) for a geometry.

        Tier-1 hits are free, Tier-2 hits cost the host fetch latency,
        misses cost the SSD read latency — the analytic counterpart of
        Figure 12's sweep, usable without running the simulator.
        """
        platform = platform or PlatformModel()
        _, t2, miss = self.tier_hit_fractions(tier1_frames, tier2_frames)
        return (
            t2 * (platform.tier2_lookup_ns + platform.host_fetch_latency_ns)
            + miss * platform.ssd_read_latency_ns
        )


def miss_ratio_curve(workload: Workload) -> MissRatioCurve:
    """One instrumented pass over ``workload`` -> its miss-ratio curve."""
    tracker = ReuseDistanceTracker()
    counts: dict[int, int] = {}
    cold = 0
    total = 0
    max_rd = -1
    for page in workload.coalesced_pages():
        total += 1
        rd = tracker.record(page)
        if rd is None:
            cold += 1
            continue
        counts[rd] = counts.get(rd, 0) + 1
        if rd > max_rd:
            max_rd = rd
    if total == 0:
        raise TraceError("cannot build a miss-ratio curve over an empty trace")
    rd_counts = np.zeros(max_rd + 1 if max_rd >= 0 else 0, dtype=np.int64)
    for rd, n in counts.items():
        rd_counts[rd] = n
    return MissRatioCurve(
        rd_counts=rd_counts, cold_accesses=cold, total_accesses=total
    )
