"""Side-by-side comparison of run results.

Given several :class:`~repro.core.runtime.RunResult` objects over the same
trace, build the comparison the evaluation figures are made of: speedups
against a named baseline, I/O deltas, hit rates, and the bottleneck each
run sits on.  Used by ``gmt-sim`` and handy in notebooks/REPL sessions.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.runtime import RunResult
from repro.errors import SimulationError
from repro.units import format_bytes, format_time


def comparison_rows(
    results: dict[str, RunResult], baseline: str | None = None
) -> list[list[object]]:
    """One row per run: label, speedup, time, SSD I/O, hit rates, bottleneck.

    Args:
        results: label -> result (insertion order preserved).
        baseline: label to normalise speedups against (default: the first).
    """
    if not results:
        raise SimulationError("nothing to compare")
    if baseline is None:
        baseline = next(iter(results))
    if baseline not in results:
        raise SimulationError(f"baseline {baseline!r} not among {list(results)}")
    accesses = {r.stats.coalesced_accesses for r in results.values()}
    if len(accesses) > 1:
        raise SimulationError(
            "results replay different traces (coalesced access counts "
            f"{sorted(accesses)}); comparisons would be meaningless"
        )
    base = results[baseline]
    rows: list[list[object]] = []
    for label, result in results.items():
        stats = result.stats
        rows.append(
            [
                label,
                result.speedup_over(base),
                format_time(result.elapsed_ns),
                format_bytes(result.ssd_io_bytes),
                f"{stats.t1_hit_rate:.0%}",
                f"{stats.t2_hit_rate:.0%}",
                result.breakdown.bottleneck,
            ]
        )
    return rows


def comparison_table(
    results: dict[str, RunResult],
    baseline: str | None = None,
    title: str | None = None,
) -> str:
    """Rendered comparison (see :func:`comparison_rows`)."""
    return render_table(
        ["runtime", "speedup", "time", "SSD I/O", "T1 hit", "T2 hit", "bottleneck"],
        comparison_rows(results, baseline),
        title=title,
    )


def io_breakdown(result: RunResult) -> dict[str, int]:
    """Page-granular I/O ledger of one run (for reports and asserts)."""
    stats = result.stats
    return {
        "ssd_reads": stats.ssd_page_reads,
        "ssd_writes": stats.ssd_page_writes,
        "tier2_fetches": stats.t2_fetches,
        "tier2_placements": stats.t2_placements,
        "clean_discards": stats.clean_discards,
    }
