"""Offline workload/run analysis.

- :mod:`repro.analysis.characterize` — instrumented-run analysis behind
  Table 2 and Figures 4 and 7: reuse percentages, VTD<->RD correlation,
  and remaining-reuse-distance distributions at Tier-1 evictions;
- :mod:`repro.analysis.metrics` — speedups, means, I/O reductions;
- :mod:`repro.analysis.report` — plain-text table rendering for the
  experiment harness.
"""

from repro.analysis.characterize import (
    AccessRDAnalysis,
    EvictionRRDAnalysis,
    VtdRdCorrelation,
    WorkloadCharacteristics,
    characterize_workload,
    collect_access_rds,
    collect_eviction_rrds,
    vtd_rd_correlation,
)
from repro.analysis.metrics import arithmetic_mean, geometric_mean, percent_change
from repro.analysis.report import render_table

__all__ = [
    "AccessRDAnalysis",
    "EvictionRRDAnalysis",
    "collect_access_rds",
    "VtdRdCorrelation",
    "WorkloadCharacteristics",
    "arithmetic_mean",
    "characterize_workload",
    "collect_eviction_rrds",
    "geometric_mean",
    "percent_change",
    "render_table",
    "vtd_rd_correlation",
]
