"""Small numeric helpers shared by experiments and reports."""

from __future__ import annotations

import math
from collections.abc import Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average; the paper's "average speedup" figures use this."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (reported alongside for speedup distributions)."""
    if not values:
        raise ValueError("mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent_change(new: float, baseline: float) -> float:
    """Signed percent change of ``new`` relative to ``baseline``.

    ``percent_change(0.5, 1.0) == -50.0`` (a halving).
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return 100.0 * (new - baseline) / baseline


def io_reduction_percent(runtime_ios: float, baseline_ios: float) -> float:
    """Figure 8(b)'s metric: how much less SSD I/O than the baseline.

    Positive means fewer I/Os.  A zero-I/O baseline with zero runtime I/O
    is a 0 % reduction.
    """
    if baseline_ios == 0:
        return 0.0
    return 100.0 * (baseline_ios - runtime_ios) / baseline_ios


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every tenant receives identical service, approaching ``1/n``
    as one tenant monopolises the resource.  Values must be non-negative;
    an all-zero allocation is (vacuously) perfectly fair.
    """
    if not values:
        raise ValueError("Jain's index of empty sequence")
    if any(v < 0 for v in values):
        raise ValueError("Jain's index requires non-negative values")
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def speedup(baseline_time: float, runtime_time: float) -> float:
    """``baseline / runtime`` — >1 means the runtime is faster."""
    if runtime_time <= 0:
        raise ValueError("runtime time must be positive")
    return baseline_time / runtime_time
