"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module keeps that output aligned and readable in a
terminal or a log file.
"""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Monospace table with a header rule, e.g.::

        Figure 8(a): speedup over BaM
        app        GMT-TierOrder  GMT-Random  GMT-Reuse
        ---------  -------------  ----------  ---------
        LavaMD             0.981       1.013      0.942
    """
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(items: Sequence[str]) -> str:
        parts = []
        for i, item in enumerate(items):
            # Left-align the first (label) column, right-align numbers.
            parts.append(item.ljust(widths[i]) if i == 0 else item.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def render_histogram(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Horizontal ASCII bar chart, e.g. Figure 7's RRD distributions::

        short   |##########                    | 0.25
        medium  |############################  | 0.70
        long    |##                            | 0.05
    """
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels vs {len(values)} values")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if any(v < 0 for v in values):
        raise ValueError("histogram values must be non-negative")
    peak = max(values, default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        filled = 0 if peak == 0 else round(value / peak * width)
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{label.ljust(label_width)}  |{bar}| {_format_cell(value)}")
    return "\n".join(lines)
