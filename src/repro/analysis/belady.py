"""Belady's MIN algorithm — the optimal-replacement reference.

The paper's policies *approximate* "Belady's OPT algorithm [8]: one should
replace the page whose next reference is furthest in the future".  This
module computes the real thing offline for a single cache level, so
analyses can report how far the clock algorithm (and hence everything
built on it) sits from optimal for Tier-1:

>>> misses = belady_min_misses(pages, capacity=1024)
>>> clock = clock_misses(pages, capacity=1024)
>>> efficiency = misses / clock    # 1.0 = clock is optimal

Implementation: one pass with a max-heap of (next-use, page) entries and
lazy invalidation; O(N log N) over the trace.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque

from repro.errors import TraceError
from repro.mem.clock_replacement import ClockReplacement

#: Sentinel "never used again" distance (sorts after every real index).
_NEVER = float("inf")


def belady_min_misses(pages: list[int], capacity: int) -> int:
    """Miss count of Belady's MIN on ``pages`` with ``capacity`` frames.

    Counts cold misses too (every first access is a miss).
    """
    if capacity < 1:
        raise TraceError(f"capacity must be >= 1, got {capacity}")
    # next_use[i] = index of the next access to pages[i] after i.
    positions: dict[int, deque[int]] = defaultdict(deque)
    for i, page in enumerate(pages):
        positions[page].append(i)

    resident: set[int] = set()
    # Max-heap on next use (store negatives); entries go stale when a page
    # is touched again — validated lazily against `next_use_of`.
    heap: list[tuple[float, int]] = []
    next_use_of: dict[int, float] = {}
    misses = 0

    for i, page in enumerate(pages):
        positions[page].popleft()  # consume this access
        upcoming = positions[page][0] if positions[page] else _NEVER
        if page in resident:
            next_use_of[page] = upcoming
            heapq.heappush(heap, (-upcoming, page))
            continue
        misses += 1
        if len(resident) >= capacity:
            while True:
                neg_use, victim = heapq.heappop(heap)
                if victim in resident and next_use_of.get(victim) == -neg_use:
                    break  # freshest entry for a resident page
            resident.remove(victim)
            del next_use_of[victim]
        resident.add(page)
        next_use_of[page] = upcoming
        heapq.heappush(heap, (-upcoming, page))
    return misses


def clock_misses(pages: list[int], capacity: int) -> int:
    """Miss count of the clock algorithm (the runtimes' Tier-1 policy)."""
    if capacity < 1:
        raise TraceError(f"capacity must be >= 1, got {capacity}")
    clock = ClockReplacement(capacity)
    misses = 0
    for page in pages:
        if page in clock:
            clock.touch(page)
            continue
        misses += 1
        if clock.full:
            clock.select_victim()
        clock.insert(page, referenced=True)
    return misses


def clock_vs_min(pages: list[int], capacity: int) -> dict[str, float]:
    """Compare clock against MIN on one trace.

    Returns a dict with both miss counts and ``efficiency`` =
    MIN misses / clock misses (1.0 means clock is optimal; lower means
    clock wastes that fraction of its misses).
    """
    min_misses = belady_min_misses(pages, capacity)
    clk = clock_misses(pages, capacity)
    return {
        "min_misses": min_misses,
        "clock_misses": clk,
        "efficiency": min_misses / clk if clk else 1.0,
    }
